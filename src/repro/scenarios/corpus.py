"""Campaign oracle, delta-debugging shrinker, and hard-case corpus.

The scenario fuzzer's back half.  :func:`run_generated` executes one
:class:`~repro.scenarios.generator.GeneratedScenario` as a standard
healing campaign (optionally recording its telemetry trace), and
:func:`classify` applies the **campaign-level oracle** — it grades the
whole run, not individual assertions, into hard-case verdicts:

``missed_detection``
    a fault was injected but the detector never fired within the
    episode wait budget;
``failed_repair``
    an episode ended with the administrator paged or the service never
    verified healthy;
``oscillating_repair``
    the loop returned to a previously-tried fix kind after trying
    something else (an A..B..A application pattern — thrash, not
    progress);
``slo_breach_after_heal``
    the SLO was violated again within a short window of an episode
    being declared recovered ("healed" that did not stick);
``wrong_tier_root_cause``
    the fix that healed an episode lives in a different tier than
    every ground-truth fault, and is not one of the faults' catalog
    candidate fixes (the service got healthy by side effect, not by
    root-cause repair).

Any verdict makes a run a *hard case*.  :func:`shrink` then
delta-debugs the spec — deleting fault-plan slots ddmin-style and
simplifying workload/SLO knobs — to the smallest spec that still
produces the target verdict, and :func:`save_entry` serializes it into
the committed ``corpus/`` directory together with its expected
campaign-stat **fingerprint** (single-service, and fleet when the spec
describes one).  :func:`replay_corpus` is the CI regression gate: it
re-runs every entry and hard-fails on any fingerprint drift.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field

from repro.experiments.campaign import CampaignResult, run_campaign
from repro.faults.catalog import catalog_entry
from repro.scenarios.generator import GeneratedScenario, generate_scenario
from repro.scenarios.packs import build_scenario_service
from repro.scenarios.runner import build_approach
from repro.scenarios.trace import RecordingInjector, TraceRecorder

__all__ = [
    "CorpusEntry",
    "FuzzReport",
    "GeneratedRun",
    "VERDICTS",
    "classify",
    "fingerprint_fleet",
    "fingerprint_result",
    "fleet_payload",
    "format_fuzz",
    "fuzz",
    "load_corpus",
    "replay_corpus",
    "run_generated",
    "save_entry",
    "shrink",
]

CORPUS_VERSION = 1

# Verdicts in severity order (the first one a run earns is its
# *primary* verdict — the shrinker's preservation target and the
# corpus bucket key).
VERDICTS = (
    "failed_repair",
    "oscillating_repair",
    "slo_breach_after_heal",
    "wrong_tier_root_cause",
    "missed_detection",
)

# Ticks after recovered_at in which a fresh SLO violation means the
# heal did not stick.
POST_HEAL_WINDOW = 25

# Which tier a failure kind is rooted in.  None = capacity pressure
# (any tier can legitimately be the one provisioned/fixed).
_FAULT_TIER = {
    "deadlocked_threads": "app",
    "unhandled_exception": "app",
    "software_aging": "app",
    "source_code_bug": "app",
    "hung_query": "db",
    "stale_statistics": "db",
    "table_contention": "db",
    "buffer_contention": "db",
    "transient_glitch": "db",
    "network_fault": "network",
    "operator_misconfig": "config",
    "tier_capacity_loss": None,
    "load_surge": None,
}

# Which tier a fix kind operates on.  "target" = the application's
# target names the tier; None = capacity fix (tier-ambiguous);
# "service" = whole-service sledgehammer.
_FIX_TIER = {
    "microreboot_ejb": "app",
    "reboot_tier": "target",
    "restart_service": "service",
    "kill_hung_query": "db",
    "update_statistics": "db",
    "repartition_table": "db",
    "repartition_memory": "db",
    "provision_tier": None,
    "rollback_config": "config",
    "failover_network": "network",
}


@dataclass
class GeneratedRun:
    """One executed generated scenario plus its oracle grading."""

    spec: GeneratedScenario
    result: CampaignResult
    slo_flags: list[bool]
    verdicts: tuple[str, ...] = ()
    approach: str = "signature"
    threshold: int = 5
    trace_path: str | None = None
    trace_sha256: str | None = None
    events_path: str | None = None
    events_sha256: str | None = None

    @property
    def primary_verdict(self) -> str | None:
        return self.verdicts[0] if self.verdicts else None

    @property
    def fingerprint(self) -> str:
        return fingerprint_result(self.result)


def run_generated(
    spec: GeneratedScenario,
    approach: str = "signature",
    record_path: str | None = None,
    threshold: int = 5,
    events_path: str | None = None,
) -> GeneratedRun:
    """Run one generated scenario as a healing campaign and grade it.

    Mirrors :func:`repro.scenarios.runner.run_scenario` (same episode
    engine, same recording hooks) but keeps a per-tick SLO-violation
    timeline, which the ``slo_breach_after_heal`` oracle needs and the
    campaign result does not carry.
    """
    pack = spec.to_pack()
    service = build_scenario_service(pack, seed=spec.seed)
    approach_obj = build_approach(approach)

    slo_flags: list[bool] = []
    service.tick_hooks.append(
        lambda snapshot: slo_flags.append(bool(snapshot.slo_violated))
    )

    recorder = None
    injector = None
    sha = None
    if record_path is not None:
        recorder = TraceRecorder(record_path)
        recorder.set_header(
            kind="campaign",
            scenario=spec.name,
            seed=spec.seed,
            n_episodes=spec.n_episodes,
            approach=approach,
            threshold=threshold,
            include_invasive=True,
            beans=sorted(service.app.container.ejbs),
            capacities={
                "web": service.web.capacity,
                "app": service.app.capacity,
                "db": service.db.capacity,
            },
        )
        injector = RecordingInjector(service, recorder)
        service.tick_hooks.append(lambda snapshot: recorder.tick(0, snapshot))

    telemetry = None
    if events_path is not None:
        from repro.telemetry import HealingTelemetry

        telemetry = HealingTelemetry(member=0)

    result = run_campaign(
        approach_obj,
        n_episodes=spec.n_episodes,
        seed=spec.seed,
        faults=spec.build_faults(),
        threshold=threshold,
        max_episode_wait=spec.max_episode_wait,
        settle_ticks=spec.settle_ticks,
        service=service,
        injector=injector,
        telemetry=telemetry,
    )
    if recorder is not None:
        recorder.summary(0, result.injected, result.undetected)
        sha = recorder.close()
    events_sha = None
    if telemetry is not None:
        from repro.telemetry import dump_events

        events_sha = dump_events(
            events_path,
            {
                "kind": "campaign",
                "scenario": spec.name,
                "seed": spec.seed,
                "approach": approach,
                "n_episodes": spec.n_episodes,
            },
            [telemetry.events],
        )

    run = GeneratedRun(
        spec=spec,
        result=result,
        slo_flags=slo_flags,
        approach=approach,
        threshold=threshold,
        trace_path=record_path,
        trace_sha256=sha,
        events_path=events_path,
        events_sha256=events_sha,
    )
    # The breach window must not reach past the inter-episode settle
    # barrier, or the *next* episode's fault would read as a failed
    # heal of this one.  A violation inside the settle window is safe:
    # the next injection only happens after settle_ticks compliant
    # ticks in a row.
    run.verdicts = classify(
        result,
        slo_flags,
        post_heal_window=min(POST_HEAL_WINDOW, spec.settle_ticks),
    )
    return run


# ----------------------------------------------------------------------
# The oracle.
# ----------------------------------------------------------------------


def _successful_application(report):
    """The fix application that healed an episode, or None."""
    for application, outcome in zip(
        reversed(report.applications), reversed(report.outcomes)
    ):
        if outcome:
            return application
    return None


def _is_wrong_tier(report) -> bool:
    if report.successful_fix is None or report.admin_resolved:
        return False
    candidates: set[str] = set()
    fault_tiers: set[str | None] = set()
    for kind in report.fault_kinds:
        try:
            candidates.update(catalog_entry(kind).candidate_fixes)
        except KeyError:  # pragma: no cover - future kinds
            return False
        fault_tiers.add(_FAULT_TIER.get(kind))
    if report.successful_fix in candidates:
        return False
    if None in fault_tiers:
        return False  # capacity faults: any relief is legitimate
    fix_tier = _FIX_TIER.get(report.successful_fix)
    if fix_tier is None:
        return False
    if fix_tier == "target":
        application = _successful_application(report)
        fix_tier = application.target if application is not None else None
        if fix_tier is None:
            return False
    return fix_tier not in fault_tiers


def _is_oscillating(report) -> bool:
    kinds = [application.kind for application in report.applications]
    seen_since: dict[str, bool] = {}
    for kind in kinds:
        if seen_since.get(kind):
            return True  # kind re-tried after a different kind ran
        for other in seen_since:
            if other != kind:
                seen_since[other] = True
        seen_since.setdefault(kind, False)
    return False


def classify(
    result: CampaignResult,
    slo_flags: list[bool],
    post_heal_window: int = POST_HEAL_WINDOW,
) -> tuple[str, ...]:
    """Grade one campaign into hard-case verdicts (severity order)."""
    found: set[str] = set()
    if result.undetected > 0:
        found.add("missed_detection")
    for report in result.reports:
        if report.admin_resolved or not report.recovered:
            found.add("failed_repair")
        if _is_oscillating(report):
            found.add("oscillating_repair")
        if _is_wrong_tier(report):
            found.add("wrong_tier_root_cause")
        if report.recovered_at is not None:
            lo = report.recovered_at + 1
            hi = min(len(slo_flags), lo + post_heal_window)
            if any(slo_flags[lo:hi]):
                found.add("slo_breach_after_heal")
    return tuple(v for v in VERDICTS if v in found)


# ----------------------------------------------------------------------
# Fingerprints.
# ----------------------------------------------------------------------


_HUNG_TXN = re.compile(r"^hung-\d+$")


def _canonical_target(target: str | None) -> str | None:
    """Strip process-global uniqueness tokens from fix targets.

    ``HungQueryFault`` mints ``hung-<N>`` transaction ids from a
    process-wide counter (two live hung queries must never collide in
    the lock manager), so the victim a ``kill_hung_query`` application
    reports depends on how many hung queries the *process* has ever
    built — not on the campaign.  The fingerprint must be a pure
    function of the spec, so the token is canonicalized.
    """
    if target is not None and _HUNG_TXN.match(target):
        return "hung-*"
    return target


def _report_payload(report) -> dict:
    return {
        "fault_kinds": list(report.fault_kinds),
        "fault_category": report.fault_category,
        "injected_at": report.injected_at,
        "detected_at": report.detected_at,
        "recovered_at": report.recovered_at,
        "applications": [
            [application.kind, _canonical_target(application.target)]
            for application in report.applications
        ],
        "outcomes": [bool(outcome) for outcome in report.outcomes],
        "successful_fix": report.successful_fix,
        "escalated": bool(report.escalated),
        "admin_resolved": bool(report.admin_resolved),
    }


def _result_payload(result: CampaignResult) -> dict:
    return {
        "injected": result.injected,
        "undetected": result.undetected,
        "total_ticks": result.total_ticks,
        "reports": [_report_payload(report) for report in result.reports],
    }


def _digest(payload) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint_result(result: CampaignResult) -> str:
    """Exact campaign-stat fingerprint (order, ticks, fixes, outcomes).

    Every field is an int/str/bool, so equality is bit-exactness of
    the campaign — the property the corpus gate pins across replays,
    Python versions, and worker counts.
    """
    return _digest(_result_payload(result))


def fleet_payload(result) -> dict:
    """JSON-able stats of a fleet campaign — the fingerprint preimage.

    Every field is an int/str/bool, so payload equality is
    bit-exactness of the fleet campaign.  The large-fleet golden
    (``tests/fleet/golden_large_fleet.json``) commits this payload
    verbatim so drift diagnostics can point at the exact service and
    report that moved, not just a digest mismatch.
    """
    return {
        "per_service": [
            _result_payload(campaign) for campaign in result.per_service
        ],
        "knowledge_entries": result.knowledge_entries,
        "knowledge_absorbed": result.knowledge_absorbed,
    }


def fingerprint_fleet(result) -> str:
    """Fingerprint of a :class:`~repro.fleet.campaign.FleetResult`."""
    return _digest(fleet_payload(result))


def _run_fleet(spec: GeneratedScenario, engine: str = "object"):
    from repro.fleet.campaign import run_fleet_campaign

    fleet = spec.fleet
    return run_fleet_campaign(
        n_services=int(fleet.get("n_services", 1)),
        episodes_per_service=int(fleet.get("episodes_per_service", 2)),
        seed=spec.seed,
        workers=1,
        p_correlated=float(fleet.get("p_correlated", 0.4)),
        p_cascade=float(fleet.get("p_cascade", 0.15)),
        scenario=spec.to_pack(),
        engine=engine,
    )


# ----------------------------------------------------------------------
# Shrinking (delta debugging).
# ----------------------------------------------------------------------


class _Predicate:
    """Cached "does this spec still earn the verdict?" oracle calls."""

    def __init__(self, verdict: str, approach: str = "signature") -> None:
        self.verdict = verdict
        self.approach = approach
        self.runs = 0
        self._cache: dict[str, bool] = {}

    def __call__(self, spec: GeneratedScenario) -> bool:
        if not spec.fault_plan:
            return False
        key = spec.canonical_json()
        if key not in self._cache:
            self.runs += 1
            run = run_generated(spec, approach=self.approach)
            self._cache[key] = self.verdict in run.verdicts
        return self._cache[key]


def _ddmin_slots(spec: GeneratedScenario, holds: _Predicate) -> GeneratedScenario:
    """ddmin (complement reduction) over the fault-plan slots."""
    plan = list(spec.fault_plan)
    granularity = 2
    while len(plan) >= 2:
        chunk = max(1, (len(plan) + granularity - 1) // granularity)
        removed_any = False
        start = 0
        while start < len(plan):
            candidate = plan[:start] + plan[start + chunk :]
            if candidate and holds(
                spec.simplified(fault_plan=tuple(candidate))
            ):
                plan = candidate
                granularity = max(2, granularity - 1)
                removed_any = True
                break  # chunk size recomputed for the shorter plan
            start += chunk
        if removed_any:
            continue
        if granularity >= len(plan):
            break
        granularity = min(len(plan), granularity * 2)
    return spec.simplified(fault_plan=tuple(plan))


# Knob simplifications, tried in order once the plan is minimal: each
# makes the reproducer smaller/cheaper and is kept only if the verdict
# survives.
def _knob_passes(spec: GeneratedScenario) -> list[GeneratedScenario]:
    candidates: list[GeneratedScenario] = []
    if spec.workload.get("retry"):
        candidates.append(
            spec.simplified(workload={**spec.workload, "retry": None})
        )
    if spec.workload.get("pattern") != "constant":
        candidates.append(
            spec.simplified(
                workload={
                    **spec.workload,
                    "pattern": "constant",
                    "options": {},
                }
            )
        )
    if spec.workload.get("arrival_scale", 1.0) != 1.0:
        candidates.append(
            spec.simplified(
                workload={**spec.workload, "arrival_scale": 1.0}
            )
        )
    if spec.max_episode_wait > 60:
        candidates.append(spec.simplified(max_episode_wait=60))
    if spec.settle_ticks > 10:
        candidates.append(spec.simplified(settle_ticks=10))
    return candidates


@dataclass
class ShrinkResult:
    """A minimized spec plus the work it took to get there."""

    spec: GeneratedScenario
    verdict: str
    original_slots: int
    runs: int


def shrink(
    spec: GeneratedScenario,
    verdict: str | None = None,
    approach: str = "signature",
) -> ShrinkResult:
    """Minimize a failing spec while preserving its verdict.

    First delta-debugs the fault plan down to a minimal slot set
    (ddmin), then greedily simplifies workload/SLO/patience knobs.
    Raises ``ValueError`` when the spec does not produce the requested
    (or any) verdict to begin with.
    """
    if verdict is None:
        initial = run_generated(spec, approach=approach)
        if not initial.verdicts:
            raise ValueError(
                f"spec {spec.name!r} produces no oracle verdict; "
                "nothing to shrink"
            )
        verdict = initial.verdicts[0]
    holds = _Predicate(verdict, approach=approach)
    if not holds(spec):
        raise ValueError(
            f"spec {spec.name!r} does not produce verdict {verdict!r}"
        )
    minimized = _ddmin_slots(spec, holds)
    progress = True
    while progress:
        progress = False
        for candidate in _knob_passes(minimized):
            if holds(candidate):
                minimized = candidate
                progress = True
                break
    return ShrinkResult(
        spec=minimized,
        verdict=verdict,
        original_slots=spec.n_episodes,
        runs=holds.runs,
    )


# ----------------------------------------------------------------------
# Corpus persistence.
# ----------------------------------------------------------------------


@dataclass
class CorpusEntry:
    """One committed hard-case reproducer.

    Attributes:
        name: file stem (``<verdict>-<kinds>-<spec hash>``).
        bucket: ``<verdict>:<kinds>`` — the fuzzer's novelty key.
        verdicts: full oracle grading of the minimized run.
        spec: the minimized generated scenario.
        fingerprint: expected single-service campaign fingerprint.
        fleet_fingerprint: expected fleet fingerprint, when the spec's
            fleet mix has more than one service (else None).
        approach / threshold: the healing-loop configuration the
            fingerprint was produced with — replay must use the same
            one or drift is guaranteed.  (The fleet fingerprint always
            uses the fleet's own knowledge-sharing approach.)
        found: provenance (fuzzer seed/case, slot counts, runs spent
            shrinking).
        summary: human-oriented stats (episodes healed, undetected,
            ticks) for ``corpus list``.
    """

    name: str
    bucket: str
    verdicts: tuple[str, ...]
    spec: GeneratedScenario
    fingerprint: str
    fleet_fingerprint: str | None = None
    approach: str = "signature"
    threshold: int = 5
    found: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "version": CORPUS_VERSION,
            "name": self.name,
            "bucket": self.bucket,
            "verdicts": list(self.verdicts),
            "spec": self.spec.to_json_dict(),
            "fingerprint": self.fingerprint,
            "fleet_fingerprint": self.fleet_fingerprint,
            "approach": self.approach,
            "threshold": self.threshold,
            "found": self.found,
            "summary": self.summary,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "CorpusEntry":
        version = int(payload.get("version", CORPUS_VERSION))
        if version != CORPUS_VERSION:
            raise ValueError(
                f"unsupported corpus entry version {version} "
                f"(supported: {CORPUS_VERSION})"
            )
        return cls(
            name=str(payload["name"]),
            bucket=str(payload["bucket"]),
            verdicts=tuple(payload["verdicts"]),
            spec=GeneratedScenario.from_json_dict(payload["spec"]),
            fingerprint=str(payload["fingerprint"]),
            fleet_fingerprint=payload.get("fleet_fingerprint"),
            approach=str(payload.get("approach", "signature")),
            threshold=int(payload.get("threshold", 5)),
            found=dict(payload.get("found", {})),
            summary=dict(payload.get("summary", {})),
        )


def _entry_from_run(
    run: GeneratedRun,
    found: dict,
    with_fleet: bool = True,
) -> CorpusEntry:
    verdict = run.primary_verdict or "none"
    bucket = _bucket_of(run)
    kinds = bucket.split(":", 1)[1].split("+") if ":" in bucket else []
    fleet_fp = None
    if with_fleet and int(run.spec.fleet.get("n_services", 1)) > 1:
        fleet_fp = fingerprint_fleet(_run_fleet(run.spec))
    return CorpusEntry(
        name=f"{verdict}-{'-'.join(kinds)[:60]}-{run.spec.spec_hash()[:8]}",
        bucket=bucket,
        verdicts=run.verdicts,
        spec=run.spec,
        fingerprint=run.fingerprint,
        fleet_fingerprint=fleet_fp,
        approach=run.approach,
        threshold=run.threshold,
        found=found,
        summary={
            "episodes_healed": len(run.result.reports),
            "injected": run.result.injected,
            "undetected": run.result.undetected,
            "total_ticks": run.result.total_ticks,
            "slots": run.spec.n_episodes,
        },
    )


def save_entry(directory: str, entry: CorpusEntry) -> str:
    """Write one corpus entry; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{entry.name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(directory: str) -> list[CorpusEntry]:
    """Load every ``*.json`` corpus entry (name-sorted)."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        with open(
            os.path.join(directory, filename), "r", encoding="utf-8"
        ) as handle:
            entries.append(CorpusEntry.from_json_dict(json.load(handle)))
    return entries


@dataclass
class ReplayCheck:
    """One corpus entry's replay outcome in the CI gate."""

    entry: CorpusEntry
    ok: bool
    details: str


def replay_corpus(
    directory: str,
    check_fleet: bool = True,
    record_dir: str | None = None,
    events_dir: str | None = None,
) -> list[ReplayCheck]:
    """Re-run every corpus entry and compare fingerprints.

    The regression gate: any drift in campaign statistics — different
    detection tick, different fix, different verdicts — fails the
    entry.  With ``record_dir`` each replay also records its telemetry
    trace (every corpus entry is replayable through the standard
    record/replay layer); with ``events_dir`` each replay writes its
    flight-recorder event log (the CI failure artifact).
    """
    checks: list[ReplayCheck] = []
    for entry in load_corpus(directory):
        record_path = None
        if record_dir is not None:
            os.makedirs(record_dir, exist_ok=True)
            record_path = os.path.join(record_dir, f"{entry.name}.jsonl")
        events_path = None
        if events_dir is not None:
            os.makedirs(events_dir, exist_ok=True)
            events_path = os.path.join(
                events_dir, f"{entry.name}.events.jsonl"
            )
        run = run_generated(
            entry.spec,
            approach=entry.approach,
            threshold=entry.threshold,
            record_path=record_path,
            events_path=events_path,
        )
        problems = []
        if run.fingerprint != entry.fingerprint:
            problems.append(
                f"campaign fingerprint drift "
                f"(expected {entry.fingerprint[:12]}, "
                f"got {run.fingerprint[:12]})"
            )
        if run.verdicts != entry.verdicts:
            problems.append(
                f"verdict drift (expected {list(entry.verdicts)}, "
                f"got {list(run.verdicts)})"
            )
        if (
            check_fleet
            and entry.fleet_fingerprint is not None
        ):
            fleet_fp = fingerprint_fleet(_run_fleet(entry.spec))
            if fleet_fp != entry.fleet_fingerprint:
                problems.append(
                    f"fleet fingerprint drift "
                    f"(expected {entry.fleet_fingerprint[:12]}, "
                    f"got {fleet_fp[:12]})"
                )
        checks.append(
            ReplayCheck(
                entry=entry,
                ok=not problems,
                details="; ".join(problems) if problems else "bit-exact",
            )
        )
    return checks


# ----------------------------------------------------------------------
# The fuzz campaign.
# ----------------------------------------------------------------------


@dataclass
class FuzzReport:
    """What one fuzz campaign did."""

    seed: int
    budget: int
    verdict_counts: dict = field(default_factory=dict)
    hard_cases: int = 0
    new_entries: list = field(default_factory=list)  # (path, CorpusEntry)
    skipped_known: int = 0
    shrink_runs: int = 0


def _offending_kinds(run: GeneratedRun) -> list[str]:
    """Fault kinds of the reports that earned the primary verdict.

    The bucket key must describe the *failure mode*, not everything a
    run happened to inject — otherwise the same minimized reproducer
    is rediscovered under a different alias every night.
    """
    verdict = run.primary_verdict
    if verdict == "missed_detection":
        detected = {
            kind
            for report in run.result.reports
            for kind in report.fault_kinds
        }
        undetected = {
            slot["kind"] for slot in run.spec.fault_plan
        } - detected
        if undetected:
            return sorted(undetected)
        return sorted({slot["kind"] for slot in run.spec.fault_plan})
    window = min(POST_HEAL_WINDOW, run.spec.settle_ticks)
    offending: set[str] = set()
    for report in run.result.reports:
        hit = False
        if verdict == "failed_repair":
            hit = report.admin_resolved or not report.recovered
        elif verdict == "oscillating_repair":
            hit = _is_oscillating(report)
        elif verdict == "wrong_tier_root_cause":
            hit = _is_wrong_tier(report)
        elif verdict == "slo_breach_after_heal":
            if report.recovered_at is not None:
                lo = report.recovered_at + 1
                hi = min(len(run.slo_flags), lo + window)
                hit = any(run.slo_flags[lo:hi])
        if hit:
            offending.update(report.fault_kinds)
    if offending:
        return sorted(offending)
    return sorted({slot["kind"] for slot in run.spec.fault_plan})


def _bucket_of(run: GeneratedRun) -> str:
    verdict = run.primary_verdict or "none"
    return f"{verdict}:{'+'.join(_offending_kinds(run))}"


def fuzz(
    budget: int,
    seed: int = 0,
    corpus_dir: str | None = None,
    out_dir: str | None = None,
    shrink_new: bool = True,
    max_new: int = 10,
    with_fleet: bool = True,
) -> FuzzReport:
    """Run a fuzz campaign: generate, run, grade, shrink, persist.

    Args:
        budget: generated scenarios to run.
        seed: fuzzer root seed; ``(seed, case)`` fully determines each
            generated scenario, so a fuzz campaign is reproducible.
        corpus_dir: existing corpus — its buckets are treated as known
            (no re-shrinking the same failure mode every night).
        out_dir: where new minimized reproducers are written (the
            nightly job uploads this directory as its artifact);
            defaults to ``corpus_dir``.
        shrink_new: minimize novel hard cases before saving.
        max_new: stop saving after this many new reproducers (keeps a
            pathological night bounded).
        with_fleet: also pin the fleet fingerprint of multi-service
            specs (slower, but makes entries fleet-replayable).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    out_dir = out_dir if out_dir is not None else corpus_dir
    known_buckets = set()
    if corpus_dir is not None:
        known_buckets.update(e.bucket for e in load_corpus(corpus_dir))
    if out_dir is not None and out_dir != corpus_dir:
        known_buckets.update(e.bucket for e in load_corpus(out_dir))

    report = FuzzReport(seed=seed, budget=budget)
    for case in range(budget):
        spec = generate_scenario(seed, case)
        run = run_generated(spec)
        for verdict in run.verdicts:
            report.verdict_counts[verdict] = (
                report.verdict_counts.get(verdict, 0) + 1
            )
        if not run.verdicts:
            continue
        report.hard_cases += 1
        if len(report.new_entries) >= max_new:
            continue
        bucket = _bucket_of(run)
        if bucket in known_buckets:
            report.skipped_known += 1
            continue
        found = {
            "fuzzer_seed": seed,
            "case": case,
            "original_slots": spec.n_episodes,
        }
        if shrink_new:
            shrunk = shrink(spec, verdict=run.primary_verdict)
            report.shrink_runs += shrunk.runs
            found["shrink_runs"] = shrunk.runs
            found["minimized_slots"] = shrunk.spec.n_episodes
            run = run_generated(shrunk.spec)
            if run.primary_verdict is None:  # pragma: no cover - guard
                continue
        entry = _entry_from_run(run, found, with_fleet=with_fleet)
        # Shrinking can collapse two differently-bucketed originals
        # into the same minimized failure mode — re-check novelty on
        # the entry's own bucket before saving.  The original bucket
        # becomes known either way, so later cases that would collapse
        # the same way skip the expensive shrink instead of repeating
        # it.
        if entry.bucket in known_buckets:
            known_buckets.add(bucket)
            report.skipped_known += 1
            continue
        known_buckets.add(bucket)
        known_buckets.add(entry.bucket)
        if out_dir is not None:
            path = save_entry(out_dir, entry)
        else:
            path = "<unsaved>"
        report.new_entries.append((path, entry))
    return report


def format_fuzz(report: FuzzReport) -> str:
    """Human-readable fuzz campaign summary."""
    lines = [
        (
            f"Fuzzed {report.budget} generated scenarios (seed "
            f"{report.seed}): {report.hard_cases} hard cases, "
            f"{report.skipped_known} in known buckets, "
            f"{len(report.new_entries)} new minimized reproducers"
        )
    ]
    if report.verdict_counts:
        lines.append(
            "  verdicts: "
            + ", ".join(
                f"{verdict}={count}"
                for verdict, count in sorted(report.verdict_counts.items())
            )
        )
    if report.shrink_runs:
        lines.append(f"  shrinking spent {report.shrink_runs} extra runs")
    for path, entry in report.new_entries:
        lines.append(
            f"  new: {entry.bucket} "
            f"({entry.summary.get('slots', '?')} slots) -> {path}"
        )
    return "\n".join(lines)
