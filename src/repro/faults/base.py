"""Fault abstraction.

A fault is the ground-truth cause behind a failure: injecting one
perturbs the service the way its real counterpart would, and the fault
itself knows which fix applications genuinely repair it (mirroring the
mechanics — a microreboot of the wedged bean releases its threads, a
statistics refresh cures a misplanned query).  The healing loop never
reads this ground truth; it only observes SLO compliance.  Benchmarks
and dataset generators use it for labels.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar

from repro.fixes.base import FixApplication

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.service import MultitierService

__all__ = ["Fault"]

CATEGORIES = ("operator", "software", "hardware", "network", "unknown")


class Fault(abc.ABC):
    """A root cause that can be injected into a live service.

    Class attributes:
        kind: failure-kind identifier (Table 1 row).
        category: failure-cause category per the Oppenheimer et al.
            taxonomy used in Figures 1-2 (operator / software /
            hardware / network / unknown).
        canonical_fix: the fix kind used as this fault's class label in
            learning datasets (the first candidate fix of Table 1).
        description: the Table 1 failure text.
    """

    kind: ClassVar[str]
    category: ClassVar[str]
    canonical_fix: ClassVar[str]
    description: ClassVar[str]

    def __init__(self) -> None:
        self.active = False
        self.injected_at: int | None = None
        self.cleared_at: int | None = None

    @abc.abstractmethod
    def inject(self, service: "MultitierService", now: int) -> None:
        """Perturb the service.  Must set :attr:`active`."""

    @abc.abstractmethod
    def clear(self, service: "MultitierService", now: int) -> None:
        """Remove the perturbation.  Must reset :attr:`active`."""

    def on_tick(self, service: "MultitierService", now: int) -> None:
        """Per-tick evolution hook (self-clearing faults, ramps)."""

    @abc.abstractmethod
    def repaired_by(self, application: FixApplication) -> bool:
        """Whether this fix application genuinely removes the cause."""

    def _mark_injected(self, now: int) -> None:
        self.active = True
        self.injected_at = now

    def _mark_cleared(self, now: int) -> None:
        self.active = False
        self.cleared_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "inactive"
        return f"{type(self).__name__}({state})"
