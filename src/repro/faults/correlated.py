"""Correlated, fleet-wide fault scenarios.

A single service sees independent failures; a *fleet* of replicas
behind one load balancer sees correlated ones — a bad configuration
push lands on every replica at once, a regional network event degrades
several at a time, and the loss of one replica cascades through the
load balancer as a traffic surge on the survivors.  This module builds
deterministic multi-replica fault schedules for those regimes, the
scenario diversity the roadmap asks for beyond the paper's
one-service-at-a-time campaigns.

Three slot patterns:

* ``independent`` — each struck replica draws its own failure kind
  (the baseline regime; matches running N separate campaigns).
* ``correlated`` — one failure kind strikes several replicas at once
  with independently sampled instances (the fleet-wide misconfig /
  shared-dependency regime).  This is where shared healing knowledge
  pays off fastest: the first replica to learn the fix seeds the rest.
* ``cascade`` — one victim replica loses tier capacity and every
  survivor simultaneously absorbs its traffic as a load surge
  (failover-induced overload through the load balancer).

Schedules are pure functions of ``(seed, shape parameters)`` via
:func:`repro.simulator.rng.derive_rng`, so two calls with the same
arguments yield *identical* fault instances — the property the
shared-vs-isolated ablation relies on to compare both arms on the
same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.base import Fault
from repro.faults.catalog import sample_fault
from repro.faults.infra_faults import LoadSurgeFault
from repro.faults.scenarios import FIG4_FAULT_KINDS
from repro.simulator.rng import derive_rng

__all__ = [
    "FleetStrike",
    "build_correlated_schedule",
    "per_service_queues",
]


@dataclass(frozen=True)
class FleetStrike:
    """The faults one episode slot injects across the fleet.

    Attributes:
        slot: episode index within the campaign (0-based).
        pattern: ``independent`` / ``correlated`` / ``cascade``.
        kinds: primary failure kind per struck replica (annotation).
        faults: replica index -> the fault instance to inject there.
            Replicas absent from the mapping are not struck this slot.
    """

    slot: int
    pattern: str
    kinds: tuple[str, ...]
    faults: dict[int, Fault]

    @property
    def struck(self) -> tuple[int, ...]:
        return tuple(sorted(self.faults))


def build_correlated_schedule(
    n_services: int,
    n_slots: int,
    seed: int,
    p_correlated: float = 0.4,
    p_cascade: float = 0.15,
    kinds: tuple[str, ...] = FIG4_FAULT_KINDS,
    surge_factor: float = 2.5,
    surge_duration: int = 120,
) -> list[FleetStrike]:
    """Build a deterministic fleet-wide fault schedule.

    Args:
        n_services: replicas in the fleet.
        n_slots: episode slots (each replica is struck once per slot).
        seed: schedule seed; same arguments -> identical schedule.
        p_correlated: probability a slot strikes every replica with
            the *same* failure kind (independent instances).
        p_cascade: probability a slot is a failover cascade (victim
            capacity loss + survivor load surges).
        kinds: failure-kind universe for sampled strikes.
        surge_factor / surge_duration: survivor overload shape in the
            cascade pattern.
    """
    if n_services < 1:
        raise ValueError(f"n_services must be >= 1, got {n_services}")
    for name, p in (("p_correlated", p_correlated), ("p_cascade", p_cascade)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    if p_correlated + p_cascade > 1.0:
        raise ValueError(
            "p_correlated + p_cascade must be within [0, 1], got "
            f"{p_correlated + p_cascade}"
        )
    schedule: list[FleetStrike] = []
    for slot in range(n_slots):
        rng = derive_rng(seed, "fleet-correlated", slot)
        draw = float(rng.random())
        if n_services > 1 and draw < p_cascade:
            victim = int(rng.integers(n_services))
            faults: dict[int, Fault] = {
                victim: sample_fault("tier_capacity_loss", rng)
            }
            for i in range(n_services):
                if i != victim:
                    faults[i] = LoadSurgeFault(
                        factor=surge_factor, duration_ticks=surge_duration
                    )
            schedule.append(
                FleetStrike(
                    slot=slot,
                    pattern="cascade",
                    kinds=tuple(faults[i].kind for i in sorted(faults)),
                    faults=faults,
                )
            )
        elif draw < p_cascade + p_correlated:
            kind = str(rng.choice(kinds))
            faults = {i: sample_fault(kind, rng) for i in range(n_services)}
            schedule.append(
                FleetStrike(
                    slot=slot,
                    pattern="correlated",
                    kinds=(kind,) * n_services,
                    faults=faults,
                )
            )
        else:
            faults = {
                i: sample_fault(str(rng.choice(kinds)), rng)
                for i in range(n_services)
            }
            schedule.append(
                FleetStrike(
                    slot=slot,
                    pattern="independent",
                    kinds=tuple(faults[i].kind for i in sorted(faults)),
                    faults=faults,
                )
            )
    return schedule


def per_service_queues(
    schedule: list[FleetStrike], n_services: int
) -> list[list[Fault | None]]:
    """Transpose a fleet schedule into one fault queue per replica.

    Queue entry ``q[i][slot]`` is the fault replica ``i`` receives in
    that slot, or None when the slot leaves it alone.  Queues stay
    slot-aligned so replicas advance in lockstep rounds.
    """
    queues: list[list[Fault | None]] = [[] for _ in range(n_services)]
    for strike in schedule:
        for i in range(n_services):
            queues[i].append(strike.faults.get(i))
    return queues
