"""Failure catalog — the machine-readable Table 1.

Maps every failure kind to its fault class, its Table 1 description,
and its candidate fixes (first candidate = the canonical fix used as
the learning label).  ``bench_table1`` regenerates the paper's table
from this catalog by actually injecting each failure and verifying the
candidate fix restores SLO compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.faults.app_faults import (
    DeadlockedThreadsFault,
    SoftwareAgingFault,
    SourceCodeBugFault,
    UnhandledExceptionFault,
)
from repro.faults.base import Fault
from repro.faults.db_faults import (
    BufferContentionFault,
    HungQueryFault,
    StaleStatisticsFault,
    TableContentionFault,
)
from repro.faults.infra_faults import (
    LoadSurgeFault,
    NetworkFault,
    TierCapacityLossFault,
    TransientGlitchFault,
)
from repro.faults.operator_faults import OperatorMisconfigFault
from repro.fixes import catalog as fixes

__all__ = ["CatalogEntry", "FAILURE_CATALOG", "catalog_entry", "sample_fault"]

# Beans/tables sampled by the randomized fault generators.  The pools
# are kept deliberately compact: each (fault kind, target) pair is a
# distinct symptom mode, and the Figure 4 experiment's sample-efficiency
# comparison assumes a paper-scale number of modes per fix class.
_BEANS = ("ItemBean", "BidBean", "SearchBean")
_TABLES = ("items", "bids")
_TIERS = ("web", "app", "db")
_OPERATOR_SAMPLED = ("thread_pool", "heap", "buffer_shares")


@dataclass(frozen=True)
class CatalogEntry:
    """One row of the machine-readable Table 1.

    Attributes:
        kind: failure-kind identifier.
        description: the Table 1 failure text.
        candidate_fixes: fix kinds that repair it, canonical first.
        category: failure-cause category (Figures 1-2 taxonomy).
        default_factory: builds a representative instance.
        sampler: builds a randomized instance for dataset generation.
    """

    kind: str
    description: str
    candidate_fixes: tuple[str, ...]
    category: str
    default_factory: Callable[[], Fault]
    sampler: Callable[[np.random.Generator], Fault]


FAILURE_CATALOG: tuple[CatalogEntry, ...] = (
    CatalogEntry(
        kind=DeadlockedThreadsFault.kind,
        description=DeadlockedThreadsFault.description,
        candidate_fixes=(fixes.MICROREBOOT_EJB, fixes.REBOOT_TIER),
        category=DeadlockedThreadsFault.category,
        default_factory=lambda: DeadlockedThreadsFault("ItemBean"),
        sampler=lambda rng: DeadlockedThreadsFault(
            str(rng.choice(_BEANS))
        ),
    ),
    CatalogEntry(
        kind=HungQueryFault.kind,
        description=HungQueryFault.description,
        candidate_fixes=(fixes.KILL_HUNG_QUERY, fixes.REBOOT_TIER),
        category=HungQueryFault.category,
        default_factory=lambda: HungQueryFault("items"),
        sampler=lambda rng: HungQueryFault(str(rng.choice(_TABLES))),
    ),
    CatalogEntry(
        kind=UnhandledExceptionFault.kind,
        description=UnhandledExceptionFault.description,
        candidate_fixes=(fixes.MICROREBOOT_EJB, fixes.REBOOT_TIER),
        category=UnhandledExceptionFault.category,
        default_factory=lambda: UnhandledExceptionFault("BidBean"),
        sampler=lambda rng: UnhandledExceptionFault(
            str(rng.choice(_BEANS)),
            rate=float(rng.uniform(0.35, 0.60)),
        ),
    ),
    CatalogEntry(
        kind=SoftwareAgingFault.kind,
        description=SoftwareAgingFault.description,
        candidate_fixes=(fixes.REBOOT_TIER, fixes.RESTART_SERVICE),
        category=SoftwareAgingFault.category,
        default_factory=lambda: SoftwareAgingFault(),
        sampler=lambda rng: SoftwareAgingFault(
            leak_mb_per_tick=float(rng.uniform(16.0, 28.0))
        ),
    ),
    CatalogEntry(
        kind=StaleStatisticsFault.kind,
        description=StaleStatisticsFault.description,
        candidate_fixes=(fixes.UPDATE_STATISTICS,),
        category=StaleStatisticsFault.category,
        default_factory=lambda: StaleStatisticsFault(),
        sampler=lambda rng: StaleStatisticsFault(
            phantom_skew=float(rng.uniform(600.0, 1200.0))
        ),
    ),
    CatalogEntry(
        kind=TableContentionFault.kind,
        description=TableContentionFault.description,
        candidate_fixes=(fixes.REPARTITION_TABLE,),
        category=TableContentionFault.category,
        default_factory=lambda: TableContentionFault("items"),
        sampler=lambda rng: TableContentionFault("items"),
    ),
    CatalogEntry(
        kind=BufferContentionFault.kind,
        description=BufferContentionFault.description,
        candidate_fixes=(fixes.REPARTITION_MEMORY, fixes.ROLLBACK_CONFIG),
        category=BufferContentionFault.category,
        default_factory=lambda: BufferContentionFault(),
        sampler=lambda rng: BufferContentionFault(),
    ),
    CatalogEntry(
        kind=TierCapacityLossFault.kind,
        description=TierCapacityLossFault.description,
        candidate_fixes=(fixes.PROVISION_TIER,),
        category=TierCapacityLossFault.category,
        default_factory=lambda: TierCapacityLossFault("app"),
        sampler=lambda rng: TierCapacityLossFault(str(rng.choice(_TIERS))),
    ),
    CatalogEntry(
        kind=LoadSurgeFault.kind,
        description=LoadSurgeFault.description,
        candidate_fixes=(fixes.PROVISION_TIER,),
        category=LoadSurgeFault.category,
        default_factory=lambda: LoadSurgeFault(),
        sampler=lambda rng: LoadSurgeFault(
            factor=float(rng.uniform(3.5, 6.0))
        ),
    ),
    CatalogEntry(
        kind=SourceCodeBugFault.kind,
        description=SourceCodeBugFault.description,
        candidate_fixes=(fixes.RESTART_SERVICE,),
        category=SourceCodeBugFault.category,
        default_factory=lambda: SourceCodeBugFault(),
        sampler=lambda rng: SourceCodeBugFault(
            error_rate=float(rng.uniform(0.12, 0.30))
        ),
    ),
    CatalogEntry(
        kind=OperatorMisconfigFault.kind,
        description=OperatorMisconfigFault.description,
        candidate_fixes=(fixes.ROLLBACK_CONFIG,),
        category=OperatorMisconfigFault.category,
        default_factory=lambda: OperatorMisconfigFault("thread_pool"),
        sampler=lambda rng: OperatorMisconfigFault(
            str(rng.choice(_OPERATOR_SAMPLED))
        ),
    ),
    CatalogEntry(
        kind=NetworkFault.kind,
        description=NetworkFault.description,
        candidate_fixes=(fixes.FAILOVER_NETWORK,),
        category=NetworkFault.category,
        default_factory=lambda: NetworkFault(),
        sampler=lambda rng: NetworkFault(
            latency_multiplier=float(rng.uniform(30.0, 50.0)),
            drop_rate=float(rng.uniform(0.06, 0.10)),
        ),
    ),
    CatalogEntry(
        kind=TransientGlitchFault.kind,
        description=TransientGlitchFault.description,
        candidate_fixes=(fixes.RESTART_SERVICE,),
        category=TransientGlitchFault.category,
        default_factory=lambda: TransientGlitchFault(),
        sampler=lambda rng: TransientGlitchFault(
            multiplier=float(rng.uniform(10.0, 25.0))
        ),
    ),
)

_BY_KIND = {entry.kind: entry for entry in FAILURE_CATALOG}


def catalog_entry(kind: str) -> CatalogEntry:
    """Catalog row for one failure kind."""
    if kind not in _BY_KIND:
        raise KeyError(f"unknown failure kind {kind!r}")
    return _BY_KIND[kind]


def sample_fault(kind: str, rng: np.random.Generator) -> Fault:
    """A randomized instance of one failure kind."""
    return catalog_entry(kind).sampler(rng)
