"""Fault-injection framework.

One fault class per Table 1 failure row, plus the operator / network /
unknown categories needed by the Figures 1-2 dependability study.  Each
fault perturbs the simulator the way its real counterpart would and
knows (as ground truth for benchmarks only) which fix applications
repair it.
"""

from repro.faults.app_faults import (
    DeadlockedThreadsFault,
    SoftwareAgingFault,
    SourceCodeBugFault,
    UnhandledExceptionFault,
)
from repro.faults.base import Fault
from repro.faults.catalog import (
    FAILURE_CATALOG,
    CatalogEntry,
    catalog_entry,
    sample_fault,
)
from repro.faults.correlated import (
    FleetStrike,
    build_correlated_schedule,
    per_service_queues,
)
from repro.faults.db_faults import (
    BufferContentionFault,
    HungQueryFault,
    StaleStatisticsFault,
    TableContentionFault,
)
from repro.faults.infra_faults import (
    LoadSurgeFault,
    NetworkFault,
    TierCapacityLossFault,
    TransientGlitchFault,
)
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.operator_faults import (
    OPERATOR_VARIANTS,
    OperatorMisconfigFault,
)
from repro.faults.scenarios import (
    FIG4_FAULT_KINDS,
    SERVICE_PROFILES,
    sample_fault_for_category,
    sample_fig4_fault,
)

__all__ = [
    "BufferContentionFault",
    "CatalogEntry",
    "DeadlockedThreadsFault",
    "FAILURE_CATALOG",
    "FIG4_FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FleetStrike",
    "HungQueryFault",
    "InjectionRecord",
    "LoadSurgeFault",
    "NetworkFault",
    "OPERATOR_VARIANTS",
    "OperatorMisconfigFault",
    "SERVICE_PROFILES",
    "SoftwareAgingFault",
    "SourceCodeBugFault",
    "StaleStatisticsFault",
    "TableContentionFault",
    "TierCapacityLossFault",
    "TransientGlitchFault",
    "UnhandledExceptionFault",
    "build_correlated_schedule",
    "catalog_entry",
    "per_service_queues",
    "sample_fault",
    "sample_fault_for_category",
    "sample_fig4_fault",
]
