"""Named fault-injection scenarios.

Two scenario families:

* ``FIG4_FAULT_KINDS`` — the failure mix behind the Figure 4 / Table 3
  learning experiments: every Table 1 failure kind with a learnable
  canonical fix.
* ``SERVICE_PROFILES`` — three service profiles whose failure-cause
  mixes are calibrated to the Oppenheimer et al. study [18] behind
  Figures 1-2 ("Online", "Content", "ReadMostly" were the three
  anonymized services studied there).  Operator error is the most
  prominent cause in each, matching the paper's summary of Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.faults.base import Fault
from repro.faults.catalog import FAILURE_CATALOG, sample_fault

__all__ = [
    "FIG4_FAULT_KINDS",
    "SERVICE_PROFILES",
    "sample_fault_for_category",
    "sample_fig4_fault",
]

# Failure kinds in the synopsis-learning experiments (Figure 4 /
# Table 3).  Their canonical fixes span all ten learnable fix classes;
# microreboot and provision are deliberately multimodal (two failure
# kinds / three tiers map to them).
FIG4_FAULT_KINDS: tuple[str, ...] = (
    "deadlocked_threads",
    "unhandled_exception",
    "hung_query",
    "software_aging",
    "stale_statistics",
    "table_contention",
    "buffer_contention",
    "tier_capacity_loss",
    "source_code_bug",
    "operator_misconfig",
    "network_fault",
)

# Failure-cause mixes per service, calibrated to [18]: operator error
# is the most prominent cause at every service; the content-serving
# and read-mostly services see relatively more network failures.
SERVICE_PROFILES: dict[str, dict[str, float]] = {
    "Online": {
        "operator": 0.33,
        "software": 0.25,
        "network": 0.17,
        "hardware": 0.08,
        "unknown": 0.17,
    },
    "Content": {
        "operator": 0.36,
        "software": 0.25,
        "network": 0.22,
        "hardware": 0.05,
        "unknown": 0.12,
    },
    "ReadMostly": {
        "operator": 0.40,
        "network": 0.30,
        "software": 0.15,
        "hardware": 0.10,
        "unknown": 0.05,
    },
}

_KINDS_BY_CATEGORY: dict[str, list[str]] = {}
for _entry in FAILURE_CATALOG:
    _KINDS_BY_CATEGORY.setdefault(_entry.category, []).append(_entry.kind)


def sample_fig4_fault(rng: np.random.Generator) -> Fault:
    """A uniformly random Figure 4 failure instance."""
    kind = str(rng.choice(FIG4_FAULT_KINDS))
    return sample_fault(kind, rng)


def sample_fault_for_category(
    category: str, rng: np.random.Generator
) -> Fault:
    """A random failure instance from one cause category."""
    kinds = _KINDS_BY_CATEGORY.get(category)
    if not kinds:
        raise KeyError(f"no failure kinds in category {category!r}")
    return sample_fault(str(rng.choice(kinds)), rng)
