"""Database-tier faults (Table 1 rows 1 and 4-6).

* hung query holding locks -> kill hung query;
* suboptimal query plan from stale statistics -> update statistics [1];
* read/write contention on table blocks -> repartition table [12];
* buffer contention -> repartition memory across buffers [24].
"""

from __future__ import annotations

from repro.database.locks import HungTransaction
from repro.faults.base import Fault
from repro.fixes import catalog as fixes
from repro.fixes.base import FixApplication

__all__ = [
    "BufferContentionFault",
    "HungQueryFault",
    "StaleStatisticsFault",
    "TableContentionFault",
]


class HungQueryFault(Fault):
    """A runaway transaction pins locks on a hot table.

    Symptoms: lock waits and deadlock counts jump, statements on the
    victim table time out.  The database-side sibling of the
    "deadlocked threads" row of Table 1 — its listed alternative fix
    ("kill hung query") is this fault's canonical repair.
    """

    kind = "hung_query"
    category = "software"
    canonical_fix = fixes.KILL_HUNG_QUERY
    description = "Hung query holding locks (deadlocked transactions)"

    _counter = 0

    def __init__(self, table: str = "items") -> None:
        super().__init__()
        self.table = table
        type(self)._counter += 1
        self.txn_id = f"hung-{type(self)._counter}"

    def inject(self, service, now) -> None:
        service.db.engine.locks.register_hung_transaction(
            HungTransaction(self.txn_id, self.table, started_at=now)
        )
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.db.engine.locks.kill_transaction(self.txn_id)
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        if application.kind == fixes.KILL_HUNG_QUERY:
            return True
        if application.kind == fixes.REBOOT_TIER:
            return application.target == "db"
        return application.kind == fixes.RESTART_SERVICE


class StaleStatisticsFault(Fault):
    """Optimizer statistics describe a data distribution that is gone.

    A flash event (hot auction) ended, but the recorded histogram still
    claims the skew: the optimizer *over*-estimates matched rows and
    flips selective queries to full scans (Example 5's Xest >> Xact).
    Auto-ANALYZE never fires — its DML-volume trigger sees no bulk row
    change — so only an explicit statistics refresh repairs the plans.
    Restarts do not help: statistics are persistent catalog state.
    """

    kind = "stale_statistics"
    category = "software"
    canonical_fix = fixes.UPDATE_STATISTICS
    description = "Suboptimal query plan from stale optimizer statistics"

    def __init__(
        self,
        table: str = "bids",
        column: str = "item_id",
        phantom_skew: float = 800.0,
    ) -> None:
        super().__init__()
        if phantom_skew <= 1.0:
            raise ValueError("phantom_skew must be > 1")
        self.table = table
        self.column = column
        self.phantom_skew = phantom_skew

    def inject(self, service, now) -> None:
        stats = service.db.engine.statistics.statistics_for(self.table)
        stats.recorded_skew[self.column] = self.phantom_skew
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        stats = service.db.engine.statistics.statistics_for(self.table)
        stats.recorded_skew.pop(self.column, None)
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        return application.kind == fixes.UPDATE_STATISTICS


class TableContentionFault(Fault):
    """Access skew concentrates reads/writes on a few hot blocks.

    Symptoms: lock-wait time climbs on the victim table, latency of
    the interactions touching it rises.  Repartitioning multiplies the
    independent lock domains, diluting collisions (Example 4).
    """

    kind = "table_contention"
    category = "software"
    canonical_fix = fixes.REPARTITION_TABLE
    description = "Read/write contention on table blocks"

    HOT_SHRINK = 625.0

    def __init__(self, table: str = "items") -> None:
        super().__init__()
        self.table = table
        self._previous_hot_fraction: float | None = None

    def inject(self, service, now) -> None:
        table = service.db.engine.tables[self.table]
        self._previous_hot_fraction = table.hot_fraction
        table.hot_fraction = max(1e-4, table.hot_fraction / self.HOT_SHRINK)
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        if self._previous_hot_fraction is not None:
            table = service.db.engine.tables[self.table]
            table.hot_fraction = self._previous_hot_fraction
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        if application.kind != fixes.REPARTITION_TABLE:
            return False
        return application.target in (None, self.table)


class BufferContentionFault(Fault):
    """Buffer memory is split badly across pools for the live workload.

    Symptoms: the starved pool's hit ratio collapses and I/O-bound
    query time soars.  Demand-driven repartitioning [24] rebalances;
    a configuration rollback also restores the original split.
    """

    kind = "buffer_contention"
    category = "software"
    canonical_fix = fixes.REPARTITION_MEMORY
    description = "Buffer contention (mis-sized buffer pools)"

    BAD_SHARES = {"data": 0.04, "index": 0.06, "log": 0.90}

    def __init__(self) -> None:
        super().__init__()
        self._previous_shares: dict[str, float] | None = None

    def inject(self, service, now) -> None:
        buffers = service.db.engine.buffers
        self._previous_shares = {
            name: pool.pages / buffers.total_pages
            for name, pool in buffers.pools.items()
        }
        buffers.set_shares(dict(self.BAD_SHARES))
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        if self._previous_shares is not None:
            total = sum(self._previous_shares.values())
            shares = {k: v / total for k, v in self._previous_shares.items()}
            service.db.engine.buffers.set_shares(shares)
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        return application.kind in (
            fixes.REPARTITION_MEMORY,
            fixes.ROLLBACK_CONFIG,
        )
