"""Operator-error faults.

"Almost always, the root cause is the fallibility of humans, e.g., they
... misconfigure systems" (Section 1), and Figure 1 shows operator
error as the most prominent failure cause.  Each variant here is a
plausible bad configuration push; the automated repair is rolling back
to the last known-good snapshot.
"""

from __future__ import annotations

from repro.faults.base import Fault
from repro.fixes import catalog as fixes
from repro.fixes.base import FixApplication

__all__ = ["OperatorMisconfigFault", "OPERATOR_VARIANTS"]

OPERATOR_VARIANTS = (
    "thread_pool",
    "heap",
    "network_config",
    "buffer_shares",
    "web_workers",
)


class OperatorMisconfigFault(Fault):
    """A bad configuration change degrades one resource.

    Variants:
        * ``thread_pool`` — app worker threads slashed;
        * ``heap`` — application heap shrunk (GC pressure);
        * ``network_config`` — inter-tier QoS/path misconfigured;
        * ``buffer_shares`` — buffer memory split absurdly;
        * ``web_workers`` — web tier reduced to one worker.

    Every variant records itself in the service's configuration audit
    log (``note_config_change``) — the telemetry that separates an
    operator-slashed thread pool from a hardware capacity loss with
    otherwise identical symptoms.
    """

    kind = "operator_misconfig"
    category = "operator"
    canonical_fix = fixes.ROLLBACK_CONFIG
    description = "Operator error (bad configuration push)"

    def __init__(self, variant: str = "thread_pool") -> None:
        super().__init__()
        if variant not in OPERATOR_VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        self.variant = variant

    def inject(self, service, now) -> None:
        if self.variant == "thread_pool":
            service.app.capacity = max(1, service.app.capacity // 8)
        elif self.variant == "heap":
            # Shrink the heap below current occupancy: allocation
            # pressure and OOM errors appear immediately.
            service.app.heap_mb = max(256.0, service.app.heap_mb * 0.28)
            service.app.heap_used_mb = min(
                service.app.heap_used_mb, service.app.heap_mb
            )
        elif self.variant == "network_config":
            service.network_ms_per_hop *= 50.0
        elif self.variant == "buffer_shares":
            service.db.engine.buffers.set_shares(
                {"data": 0.03, "index": 0.03, "log": 0.94}
            )
        elif self.variant == "web_workers":
            service.web.capacity = 1
            service.web.base_service_ms *= 3.0
        service.note_config_change()
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.rollback_config()
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        return application.kind == fixes.ROLLBACK_CONFIG
