"""Application-tier faults (Table 1 rows 1-3 and 8).

* deadlocked threads in an EJB -> microreboot that EJB [6];
* unhandled Java exceptions -> microreboot [6];
* software aging / resource leak -> reboot at the appropriate level [26];
* source-code bug -> reboot tier/service and notify an administrator.
"""

from __future__ import annotations

from repro.faults.base import Fault
from repro.fixes import catalog as fixes
from repro.fixes.base import FixApplication

__all__ = [
    "DeadlockedThreadsFault",
    "SoftwareAgingFault",
    "SourceCodeBugFault",
    "UnhandledExceptionFault",
]


class DeadlockedThreadsFault(Fault):
    """One EJB's threads deadlock: outbound calls stop, requests hang.

    Symptoms: the bean's call-matrix row collapses, stuck threads climb,
    latency spikes to the client timeout, error rate rises.
    """

    kind = "deadlocked_threads"
    category = "software"
    canonical_fix = fixes.MICROREBOOT_EJB
    description = "Deadlocked threads in an EJB"

    def __init__(self, bean: str = "ItemBean") -> None:
        super().__init__()
        self.bean = bean

    def inject(self, service, now) -> None:
        service.app.container.set_deadlocked(self.bean, True)
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.app.container.set_deadlocked(self.bean, False)
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        if application.kind == fixes.MICROREBOOT_EJB:
            return application.target == self.bean
        if application.kind == fixes.REBOOT_TIER:
            return application.target == "app"
        return application.kind == fixes.RESTART_SERVICE


class UnhandledExceptionFault(Fault):
    """A bean starts throwing unhandled exceptions on a code path.

    Symptoms: error rate rises while latency stays near baseline, and
    the bean's outbound call chains abort (its call-split shifts) —
    deliberately a *different* symptom region than a deadlock even
    though the correct fix (microreboot) is the same.  This is the
    multimodality that caps the k-means synopsis in Figure 4.
    """

    kind = "unhandled_exception"
    category = "software"
    canonical_fix = fixes.MICROREBOOT_EJB
    description = "Java exceptions not handled correctly"

    def __init__(self, bean: str = "BidBean", rate: float = 0.45) -> None:
        super().__init__()
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.bean = bean
        self.rate = rate

    def inject(self, service, now) -> None:
        service.app.container.set_exception_rate(self.bean, self.rate)
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.app.container.set_exception_rate(self.bean, 0.0)
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        if application.kind == fixes.MICROREBOOT_EJB:
            return application.target == self.bean
        if application.kind == fixes.REBOOT_TIER:
            return application.target == "app"
        return application.kind == fixes.RESTART_SERVICE


class SoftwareAgingFault(Fault):
    """A heap leak ages the application server [26].

    Symptoms: heap occupancy and GC overhead ramp slowly; latency
    degrades monotonically; OOM errors appear near exhaustion.  The
    gradual ramp is what makes this the natural target for *proactive*
    healing (Section 5.3).
    """

    kind = "software_aging"
    category = "software"
    canonical_fix = fixes.REBOOT_TIER
    description = "Aging (leaked resources degrade the tier)"

    def __init__(
        self, leak_mb_per_tick: float = 18.0, chronic: bool = False
    ) -> None:
        super().__init__()
        if leak_mb_per_tick <= 0:
            raise ValueError("leak_mb_per_tick must be > 0")
        self.leak_mb_per_tick = leak_mb_per_tick
        # Chronic aging: the leak's *source* survives rejuvenation —
        # a reboot resets the heap but the leak resumes, so the fault
        # stays active and failure recurs.  This is the scenario the
        # proactive healer (Section 5.3) targets.
        self.chronic = chronic

    def inject(self, service, now) -> None:
        service.app.leak_mb_per_tick = self.leak_mb_per_tick
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.app.leak_mb_per_tick = 0.0
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        if self.chronic:
            return False  # rejuvenation resets the heap, not the leak
        # Rejuvenation at tier scope (or above) reclaims the leak; the
        # planned rolling variant counts too.
        if application.kind in (fixes.REBOOT_TIER, "rolling_reboot_tier"):
            return application.target == "app"
        return application.kind == fixes.RESTART_SERVICE


class SourceCodeBugFault(Fault):
    """A container-wide defect fails requests across all beans.

    No single component is responsible, so component-scoped fixes
    cannot help; Table 1 prescribes rebooting the tier/service and
    notifying an administrator.
    """

    kind = "source_code_bug"
    category = "software"
    canonical_fix = fixes.RESTART_SERVICE
    description = "Source code bug (container-wide request failures)"

    def __init__(self, error_rate: float = 0.18) -> None:
        super().__init__()
        if not 0.0 < error_rate <= 1.0:
            raise ValueError(f"error_rate must be in (0, 1], got {error_rate}")
        self.error_rate = error_rate

    def inject(self, service, now) -> None:
        service.app.container.bug_error_rate = self.error_rate
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.app.container.bug_error_rate = 0.0
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        return application.kind == fixes.RESTART_SERVICE
