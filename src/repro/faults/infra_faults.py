"""Infrastructure faults: capacity loss, flash crowds, network, glitches.

These populate the failure-cause categories of the Oppenheimer et al.
study behind Figures 1-2 (hardware, network, unknown) and the Table 1
"bottlenecked tier" row.
"""

from __future__ import annotations

from repro.faults.base import Fault
from repro.fixes import catalog as fixes
from repro.fixes.base import FixApplication

__all__ = [
    "LoadSurgeFault",
    "NetworkFault",
    "TierCapacityLossFault",
    "TransientGlitchFault",
]

_TIERS = ("web", "app", "db")


def _tier_of(service, name: str):
    return {"web": service.web, "app": service.app, "db": service.db}[name]


class TierCapacityLossFault(Fault):
    """Node failures remove most of a tier's effective capacity.

    Symptoms: the victim tier's utilization pins near 1, queueing
    delay dominates latency, shed requests appear.  Provisioning
    replacement capacity into that tier is the repair [25].
    """

    kind = "tier_capacity_loss"
    category = "hardware"
    canonical_fix = fixes.PROVISION_TIER
    description = "Bottlenecked tier (capacity lost to node failures)"

    FACTORS = {"web": 0.10, "app": 0.15, "db": 0.10}

    def __init__(self, tier: str = "app") -> None:
        super().__init__()
        if tier not in _TIERS:
            raise ValueError(f"unknown tier {tier!r}")
        self.tier = tier

    def inject(self, service, now) -> None:
        _tier_of(service, self.tier).capacity_factor = self.FACTORS[self.tier]
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        _tier_of(service, self.tier).capacity_factor = 1.0
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        if application.kind != fixes.PROVISION_TIER:
            return False
        return application.target in (None, self.tier)


class LoadSurgeFault(Fault):
    """A flash crowd multiplies offered load (the Thanksgiving surge).

    Not a component failure — the workload itself changed — so no fix
    "clears" it; the service becomes compliant again once enough
    capacity is provisioned (possibly at more than one tier, since
    "bottlenecks can shift dynamically across tiers" [25]) or the
    surge passes.
    """

    kind = "load_surge"
    category = "unknown"
    canonical_fix = fixes.PROVISION_TIER
    description = "Bottlenecked tier (flash-crowd load surge)"

    def __init__(self, factor: float = 4.0, duration_ticks: int = 240) -> None:
        super().__init__()
        if factor <= 1.0:
            raise ValueError(f"factor must be > 1, got {factor}")
        self.factor = factor
        self.duration_ticks = duration_ticks

    def inject(self, service, now) -> None:
        service.workload.rate_multiplier *= self.factor
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.workload.rate_multiplier /= self.factor
        self._mark_cleared(now)

    def on_tick(self, service, now) -> None:
        if (
            self.active
            and self.injected_at is not None
            and now - self.injected_at >= self.duration_ticks
        ):
            self.clear(service, now)

    def repaired_by(self, application: FixApplication) -> bool:
        # Provisioning compensates but the crowd is still there; the
        # healing loop's SLO check decides whether service is restored.
        return False


class NetworkFault(Fault):
    """The inter-tier network path degrades (latency and loss).

    Symptoms: network latency multiplies and a fraction of requests
    drop, while every tier's internal metrics stay healthy — the
    signature that localizes the failure *between* tiers.
    """

    kind = "network_fault"
    category = "network"
    canonical_fix = fixes.FAILOVER_NETWORK
    description = "Degraded inter-tier network path"

    def __init__(
        self, latency_multiplier: float = 40.0, drop_rate: float = 0.08
    ) -> None:
        super().__init__()
        if latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.latency_multiplier = latency_multiplier
        self.drop_rate = drop_rate

    def inject(self, service, now) -> None:
        service.network_multiplier = self.latency_multiplier
        service.network_drop_rate = self.drop_rate
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.network_multiplier = 1.0
        service.network_drop_rate = 0.0
        self._mark_cleared(now)

    def repaired_by(self, application: FixApplication) -> bool:
        return application.kind == fixes.FAILOVER_NETWORK


class TransientGlitchFault(Fault):
    """An unexplained degradation that passes on its own.

    The "unknown" slice of the failure-cause taxonomy: the database
    slows down for a while with no attributable component.  A restart
    clears it immediately; waiting clears it eventually.
    """

    kind = "transient_glitch"
    category = "unknown"
    canonical_fix = fixes.RESTART_SERVICE
    description = "Transient unattributed degradation"

    def __init__(
        self, multiplier: float = 15.0, duration_ticks: int = 90
    ) -> None:
        super().__init__()
        if multiplier <= 1.0:
            raise ValueError(f"multiplier must be > 1, got {multiplier}")
        self.multiplier = multiplier
        self.duration_ticks = duration_ticks

    def inject(self, service, now) -> None:
        service.db.engine.service_time_multiplier = self.multiplier
        self._mark_injected(now)

    def clear(self, service, now) -> None:
        service.db.engine.service_time_multiplier = 1.0
        self._mark_cleared(now)

    def on_tick(self, service, now) -> None:
        if not self.active:
            return
        # A restart may already have reset the engine multiplier; keep
        # pressing it while the glitch persists.
        if now - self.injected_at >= self.duration_ticks:
            self.clear(service, now)
        else:
            service.db.engine.service_time_multiplier = self.multiplier

    def repaired_by(self, application: FixApplication) -> bool:
        return application.kind == fixes.RESTART_SERVICE
