"""Fault injector: schedules, evolves, and resolves faults.

"During preproduction ... the service can be subjected to different
types and rates of workloads, and injected with various failures; while
recording data about observed behavior" (Section 4.2, active data
collection).  The injector is that machinery, and doubles as the ground
truth the healing benchmarks score against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.base import Fault
from repro.fixes.base import FixApplication
from repro.simulator.service import MultitierService

__all__ = ["FaultInjector", "InjectionRecord"]


@dataclass
class InjectionRecord:
    """History entry for one fault's lifecycle."""

    fault: Fault
    injected_at: int
    cleared_at: int | None = None
    cleared_by: str | None = None


class FaultInjector:
    """Owns the set of active faults on one service."""

    def __init__(self, service: MultitierService) -> None:
        self.service = service
        self.active: list[Fault] = []
        self.history: list[InjectionRecord] = []

    @property
    def any_active(self) -> bool:
        return bool(self.active)

    def inject(self, fault: Fault, now: int) -> Fault:
        """Activate a fault now."""
        fault.inject(self.service, now)
        self.active.append(fault)
        self.history.append(InjectionRecord(fault, injected_at=now))
        return fault

    def on_tick(self, now: int) -> list[Fault]:
        """Advance fault evolution; return faults that self-cleared."""
        cleared: list[Fault] = []
        for fault in list(self.active):
            fault.on_tick(self.service, now)
            if not fault.active:
                self._retire(fault, now, cleared_by="self")
                cleared.append(fault)
        return cleared

    def apply_fix(
        self, application: FixApplication, now: int
    ) -> list[Fault]:
        """Resolve any active faults this fix application repairs."""
        repaired = [
            fault for fault in self.active if fault.repaired_by(application)
        ]
        for fault in repaired:
            fault.clear(self.service, now)
            self._retire(fault, now, cleared_by=application.kind)
        return repaired

    def clear_all(self, now: int, cleared_by: str = "administrator") -> list[Fault]:
        """Oracle repair of everything (the administrator's arrival)."""
        cleared = list(self.active)
        for fault in cleared:
            fault.clear(self.service, now)
            self._retire(fault, now, cleared_by=cleared_by)
        return cleared

    def _retire(self, fault: Fault, now: int, cleared_by: str) -> None:
        if fault in self.active:
            self.active.remove(fault)
        for record in reversed(self.history):
            if record.fault is fault and record.cleared_at is None:
                record.cleared_at = now
                record.cleared_by = cleared_by
                break
