"""The stub worker: a real HTTP service with controllable failure modes.

One of these runs per tier under the live supervisor (``python -m
repro.live.stub_service --port P --name db --tier db``).  It is a
stdlib ``ThreadingHTTPServer`` — no new dependencies — exposing:

* ``GET /health`` — liveness probe (200 + JSON, or hangs/errors when
  a fault says so);
* ``GET /metrics`` — counters the live adapter samples: requests,
  errors, mean work latency over a sliding window, in-flight count,
  simulated cache growth;
* ``GET /work`` — the unit of service: sleeps the configured base
  latency, then any injected extra latency, fails at the injected
  error rate, and grows the in-process "cache" when a leak is active;
* ``POST /control/fault`` — inject behavior faults (JSON body:
  ``extra_latency_ms``, ``error_rate``, ``leak_kb_per_request``,
  ``saturate_workers``, ``fail_health``);
* ``POST /control/clear`` — clear every injected fault;
* ``POST /control/clear_cache`` — drop the accumulated cache (the
  live ``clear_cache`` healing action lands here).

Faults the stub cannot express in-process (crash, freeze) are done by
the fault driver with real signals (SIGKILL/SIGSTOP).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["ServiceState", "StubHandler", "create_server", "main"]

# /work calls contend for this many worker slots; a saturation fault
# occupies them so real requests queue, exactly like a filled pool.
POOL_SIZE = 8
# Sliding window (completed /work calls) behind the latency/error-rate
# metrics: long enough to smooth, short enough to show a fault fast.
METRIC_WINDOW = 64


class ServiceState:
    """Shared mutable state behind one stub worker (thread-safe)."""

    def __init__(
        self, name: str, tier: str, base_latency_ms: float = 2.0
    ) -> None:
        self.name = name
        self.tier = tier
        self.base_latency_ms = base_latency_ms
        self.started_at = time.monotonic()
        self.lock = threading.Lock()
        # Counters.
        self.requests_total = 0
        self.errors_total = 0
        self.inflight = 0
        self.recent: deque[tuple[float, bool]] = deque(maxlen=METRIC_WINDOW)
        # Injected faults.
        self.extra_latency_ms = 0.0
        self.error_rate = 0.0
        self.leak_kb_per_request = 0
        self.fail_health = False
        # The simulated cache: grows under a leak fault, dropped by
        # the clear_cache healing action.
        self.cache: list[bytes] = []
        # Worker-pool saturation.
        self.pool = threading.BoundedSemaphore(POOL_SIZE)
        self._saturators: list[threading.Thread] = []
        self._saturation_off = threading.Event()
        # Error decisions roll a private deterministic counter, not a
        # shared RNG, so an injected rate r fails floor-exact 1-in-1/r.
        self._error_phase = 0.0

    # ------------------------------------------------------------------
    # Fault controls.
    # ------------------------------------------------------------------

    def inject(self, fault: dict) -> dict:
        """Apply one control-endpoint fault payload; returns the state."""
        with self.lock:
            if "extra_latency_ms" in fault:
                self.extra_latency_ms = max(0.0, float(fault["extra_latency_ms"]))
            if "error_rate" in fault:
                rate = float(fault["error_rate"])
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"error_rate must be in [0,1], got {rate}")
                self.error_rate = rate
            if "leak_kb_per_request" in fault:
                self.leak_kb_per_request = max(
                    0, int(fault["leak_kb_per_request"])
                )
            if "fail_health" in fault:
                self.fail_health = bool(fault["fail_health"])
        if "saturate_workers" in fault:
            self.saturate(int(fault["saturate_workers"]))
        return self.describe()

    def saturate(self, workers: int) -> None:
        """Occupy ``workers`` pool slots until cleared."""
        self.release_saturation()
        if workers <= 0:
            return
        self._saturation_off = threading.Event()
        off = self._saturation_off

        def hold() -> None:
            acquired = self.pool.acquire(timeout=1.0)
            try:
                off.wait()
            finally:
                if acquired:
                    self.pool.release()

        for _ in range(min(workers, POOL_SIZE)):
            thread = threading.Thread(target=hold, daemon=True)
            thread.start()
            self._saturators.append(thread)

    def release_saturation(self) -> None:
        self._saturation_off.set()
        for thread in self._saturators:
            thread.join(timeout=2.0)
        self._saturators = []

    def clear_faults(self) -> dict:
        with self.lock:
            self.extra_latency_ms = 0.0
            self.error_rate = 0.0
            self.leak_kb_per_request = 0
            self.fail_health = False
        self.release_saturation()
        return self.describe()

    def clear_cache(self) -> dict:
        with self.lock:
            dropped = sum(len(chunk) for chunk in self.cache)
            self.cache = []
            self.leak_kb_per_request = 0
        return {"dropped_bytes": dropped}

    # ------------------------------------------------------------------
    # The work path.
    # ------------------------------------------------------------------

    def do_work(self) -> tuple[int, dict]:
        """One unit of service; returns (HTTP status, body)."""
        with self.lock:
            self.inflight += 1
            self.requests_total += 1
            sleep_ms = self.base_latency_ms + self.extra_latency_ms
            rate = self.error_rate
            leak_kb = self.leak_kb_per_request
            if leak_kb:
                self.cache.append(b"\x00" * (leak_kb * 1024))
            # Phase accumulator: error on every wrap past 1.0.
            self._error_phase += rate
            fail = self._error_phase >= 1.0
            if fail:
                self._error_phase -= 1.0
        started = time.monotonic()
        got_slot = self.pool.acquire(timeout=0.5)
        try:
            if got_slot:
                time.sleep(sleep_ms / 1000.0)
        finally:
            if got_slot:
                self.pool.release()
        latency_ms = (time.monotonic() - started) * 1000.0
        error = fail or not got_slot
        with self.lock:
            self.inflight -= 1
            if error:
                self.errors_total += 1
            self.recent.append((latency_ms, error))
        if not got_slot:
            return 503, {"error": "worker pool saturated"}
        if fail:
            return 500, {"error": "injected failure"}
        return 200, {"ok": True, "latency_ms": latency_ms}

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        with self.lock:
            recent = list(self.recent)
            cache_bytes = sum(len(chunk) for chunk in self.cache)
            payload = {
                "name": self.name,
                "tier": self.tier,
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "inflight": self.inflight,
                "cache_mb": cache_bytes / (1024.0 * 1024.0),
                "uptime_s": time.monotonic() - self.started_at,
            }
        if recent:
            payload["work_latency_ms"] = sum(l for l, _ in recent) / len(recent)
            payload["work_error_rate"] = sum(
                1 for _, e in recent if e
            ) / len(recent)
        else:
            payload["work_latency_ms"] = 0.0
            payload["work_error_rate"] = 0.0
        return payload

    def describe(self) -> dict:
        with self.lock:
            return {
                "name": self.name,
                "tier": self.tier,
                "extra_latency_ms": self.extra_latency_ms,
                "error_rate": self.error_rate,
                "leak_kb_per_request": self.leak_kb_per_request,
                "fail_health": self.fail_health,
                "saturated_workers": len(self._saturators),
            }


class StubHandler(BaseHTTPRequestHandler):
    """Routes the stub's endpoints onto the shared :class:`ServiceState`."""

    # Set by create_server.
    state: ServiceState

    # Silence the default per-request stderr log (the supervisor owns
    # the process's stdio).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        state = self.state
        if self.path == "/health":
            if state.fail_health:
                self._reply(503, {"status": "failing", "name": state.name})
            else:
                self._reply(
                    200, {"status": "ok", "name": state.name, "tier": state.tier}
                )
        elif self.path == "/metrics":
            self._reply(200, state.metrics())
        elif self.path == "/work":
            status, payload = state.do_work()
            self._reply(status, payload)
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        state = self.state
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8")) if raw.strip() else {}
            if not isinstance(payload, dict):
                raise ValueError("control payload must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, {"error": f"bad control payload: {exc}"})
            return
        if self.path == "/control/fault":
            try:
                self._reply(200, state.inject(payload))
            except ValueError as exc:
                self._reply(400, {"error": str(exc)})
        elif self.path == "/control/clear":
            self._reply(200, state.clear_faults())
        elif self.path == "/control/clear_cache":
            self._reply(200, state.clear_cache())
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})


def create_server(
    name: str,
    tier: str,
    port: int = 0,
    base_latency_ms: float = 2.0,
    host: str = "127.0.0.1",
) -> tuple[ThreadingHTTPServer, ServiceState]:
    """Build a ready-to-serve stub server (port 0 = ephemeral)."""
    state = ServiceState(name, tier, base_latency_ms=base_latency_ms)
    handler = type("BoundStubHandler", (StubHandler,), {"state": state})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server, state


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.live.stub_service",
        description="one controllable live-service worker",
    )
    parser.add_argument("--name", required=True, help="service name")
    parser.add_argument("--tier", default="app", help="tier label")
    parser.add_argument(
        "--port", type=int, default=0, help="listen port (0 = ephemeral)"
    )
    parser.add_argument(
        "--base-latency-ms",
        type=float,
        default=2.0,
        help="healthy per-request service time",
    )
    args = parser.parse_args(argv)
    server, _ = create_server(
        args.name, args.tier, port=args.port,
        base_latency_ms=args.base_latency_ms,
    )
    # The supervisor parses this line to learn the bound port.
    print(
        json.dumps(
            {
                "ready": True,
                "name": args.name,
                "tier": args.tier,
                "port": server.server_address[1],
            }
        ),
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
