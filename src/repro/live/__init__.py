"""Live-service execution mode: heal real processes, not the simulator.

The ``sim`` backend everything else in this repository uses is
tick-clocked and bit-exact.  This package is the ``live`` backend: the
same Table 1 fault catalog and the same monitoring/detection stack,
but executed against *real* subprocesses —

* :mod:`repro.live.stub_service` — a stdlib ``http.server`` worker
  with ``/health``, ``/metrics``, ``/work``, and fault-injection
  control endpoints;
* :mod:`repro.live.supervisor` — spawns, health-checks, reaps, and
  restarts N workers (pikehouse-style process model);
* :mod:`repro.live.adapter` — samples each process (HTTP probes +
  ``/proc``) into the unmodified ``MetricStore`` → ``BaselineModel``
  → ``FailureDetector`` stack;
* :mod:`repro.live.faults` — executes catalog fault kinds against
  real processes (SIGKILL/SIGSTOP, latency/error/leak/saturation via
  the control endpoints);
* :mod:`repro.live.policy` — the ShieldOps-shaped ``PolicyEngine``
  (cooldowns, max-retries, deterministic backoff, rate limit,
  escalation) and its ``HealingRecord`` audit ledger;
* :mod:`repro.live.loop` / :mod:`repro.live.runner` — the live
  self-healing loop with recovery verification, and the
  ``repro live run|demo`` harness.

Unlike the simulator, the live backend is wall-clock and best-effort:
results vary run to run, and nothing here feeds the bit-exact goldens.
See ``docs/live.md``.
"""

from repro.live.policy import (
    HealingAction,
    HealingOutcome,
    HealingPolicy,
    HealingRecord,
    HealingTrigger,
    PolicyEngine,
)

__all__ = [
    "HealingAction",
    "HealingOutcome",
    "HealingPolicy",
    "HealingRecord",
    "HealingTrigger",
    "PolicyEngine",
]
