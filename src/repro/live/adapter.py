"""Sample real processes into the existing monitoring stack.

The adapter is the sim↔live boundary on the *observation* side: each
call to :meth:`LiveMetricAdapter.observe` probes one worker over HTTP
(``/health``, ``/metrics``, one ``/work`` request) and reads its
``/proc/<pid>`` entries, flattens the sample into a registry-ordered
row via :class:`repro.monitoring.collectors.MappingCollector`, and
appends it to the service's completely unmodified
``MetricStore → BaselineModel → FailureDetector`` chain.  The live
"tick" is the sample index, so everything downstream — baseline
windows, z-score symptom vectors, debounced failure events — behaves
exactly as in the simulator; only the clock behind it is wall time.

SLO in live mode: the sample is *violated* when the health probe
fails, when work latency exceeds ``slo_latency_ms``, or when the
recent error rate exceeds ``slo_error_rate`` — the same latency/error
framing the simulator's SLO uses.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.live.supervisor import SupervisedProcess, Supervisor, http_json
from repro.monitoring.baseline import BaselineModel
from repro.monitoring.collectors import MappingCollector
from repro.monitoring.detector import FailureDetector, FailureEvent
from repro.monitoring.schema import MetricSpec
from repro.monitoring.timeseries import MetricStore

__all__ = [
    "LIVE_METRIC_SPECS",
    "LiveMetricAdapter",
    "LiveSample",
    "live_metric_specs",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_CLOCK_TICKS = (
    os.sysconf("SC_CLK_TCK")
    if hasattr(os, "sysconf") and os.sysconf_names.get("SC_CLK_TCK")
    else 100
)


def live_metric_specs() -> list[MetricSpec]:
    """The live source's metric schema (one row per sample).

    Names carry the ``live.`` prefix so a log can never be confused
    with simulator telemetry; ``fix_hint``s point at the live healing
    actions the symptom suggests, mirroring how the simulator registry
    hints ``restart_service`` / ``provision_tier``.
    """
    return [
        MetricSpec("live.up", "service", "service",
                   fix_hint="restart_service"),
        MetricSpec("live.health_ms", "service", "service"),
        MetricSpec("live.latency_ms", "service", "service",
                   fix_hint="provision_tier"),
        MetricSpec("live.error_rate", "service", "service",
                   fix_hint="restart_service"),
        MetricSpec("live.requests_total", "service", "service"),
        MetricSpec("live.inflight", "service", "service",
                   fix_hint="provision_tier"),
        MetricSpec("live.cache_mb", "service", "service",
                   fix_hint="clear_cache"),
        MetricSpec("live.rss_mb", "service", "service",
                   fix_hint="clear_cache"),
        MetricSpec("live.cpu_pct", "service", "service"),
    ]


LIVE_METRIC_SPECS = live_metric_specs()


@dataclass
class LiveSample:
    """One probe of one worker, before flattening."""

    tick: int
    up: bool
    health_ms: float
    metrics: dict
    work_latency_ms: float
    work_ok: bool
    rss_mb: float
    cpu_pct: float
    violated: bool

    def as_mapping(self) -> dict:
        return {
            "live.up": 1.0 if self.up else 0.0,
            "live.health_ms": self.health_ms,
            "live.latency_ms": self.work_latency_ms,
            "live.error_rate": float(
                self.metrics.get("work_error_rate", 0.0 if self.work_ok else 1.0)
            ),
            "live.requests_total": float(
                self.metrics.get("requests_total", 0.0)
            ),
            "live.inflight": float(self.metrics.get("inflight", 0.0)),
            "live.cache_mb": float(self.metrics.get("cache_mb", 0.0)),
            "live.rss_mb": self.rss_mb,
            "live.cpu_pct": self.cpu_pct,
        }


def _read_proc(pid: int) -> tuple[float, float]:
    """(RSS MiB, cumulative CPU seconds) from /proc; zeros off-Linux."""
    rss_mb = 0.0
    cpu_s = 0.0
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        rss_mb = int(fields[1]) * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, IndexError, ValueError):
        pass
    try:
        with open(f"/proc/{pid}/stat", "r", encoding="ascii") as handle:
            stat = handle.read()
        # Fields after the parenthesized comm (which may contain
        # spaces): utime/stime are positions 13/14, i.e. 11/12 past it.
        after = stat.rsplit(")", 1)[1].split()
        cpu_s = (int(after[11]) + int(after[12])) / float(_CLOCK_TICKS)
    except (OSError, IndexError, ValueError):
        pass
    return rss_mb, cpu_s


@dataclass
class _ServiceChain:
    """The unmodified per-service monitoring chain."""

    store: MetricStore
    baseline: BaselineModel
    detector: FailureDetector
    tick: int = 0
    last_sample: LiveSample | None = None
    last_cpu: tuple[float, float] | None = None  # (wall, cpu seconds)
    pid: int = -1


@dataclass
class AdapterConfig:
    """Detection knobs, sized for sub-second sampling intervals."""

    baseline_window: int = 24
    current_window: int = 4
    violation_ticks: int = 2
    recovery_ticks: int = 3
    slo_latency_ms: float = 120.0
    slo_error_rate: float = 0.25
    probe_timeout: float = 0.5
    work_probes: int = 1
    extra: dict = field(default_factory=dict)


class LiveMetricAdapter:
    """Per-service live telemetry into MetricStore/Baseline/Detector.

    Args:
        supervisor: source of worker handles (pids and ports).
        config: detection/probing knobs.
    """

    def __init__(
        self,
        supervisor: Supervisor,
        config: AdapterConfig | None = None,
    ) -> None:
        self.supervisor = supervisor
        self.config = config if config is not None else AdapterConfig()
        self.collector = MappingCollector(live_metric_specs())
        self._chains: dict[str, _ServiceChain] = {}

    # ------------------------------------------------------------------
    # The sampling path.
    # ------------------------------------------------------------------

    def chain(self, name: str) -> _ServiceChain:
        """The (lazily created) monitoring chain for one service."""
        chain = self._chains.get(name)
        if chain is None:
            cfg = self.config
            store = MetricStore(self.collector.names, capacity=2048)
            baseline = BaselineModel(
                store,
                baseline_window=cfg.baseline_window,
                current_window=cfg.current_window,
            )
            detector = FailureDetector(
                baseline,
                violation_ticks=cfg.violation_ticks,
                recovery_ticks=cfg.recovery_ticks,
            )
            chain = _ServiceChain(
                store=store, baseline=baseline, detector=detector
            )
            self._chains[name] = chain
        return chain

    def reset(self, name: str) -> None:
        """Forget a service's chain (e.g. after scale-in)."""
        self._chains.pop(name, None)

    def sample(self, handle: SupervisedProcess, chain: _ServiceChain) -> LiveSample:
        """Probe one worker; never raises on a dead/hung process."""
        cfg = self.config
        base = handle.base_url()
        up = False
        health_ms = cfg.probe_timeout * 1000.0
        metrics: dict = {}
        work_latency = cfg.probe_timeout * 1000.0
        work_ok = False

        if handle.alive():
            started = time.monotonic()
            try:
                status, _ = http_json(
                    base + "/health", timeout=cfg.probe_timeout
                )
                health_ms = (time.monotonic() - started) * 1000.0
                up = status == 200
            except OSError:
                up = False
            if up:
                try:
                    status, metrics = http_json(
                        base + "/metrics", timeout=cfg.probe_timeout
                    )
                    if status != 200:
                        metrics = {}
                except OSError:
                    metrics = {}
                latencies = []
                ok = True
                for _ in range(max(1, cfg.work_probes)):
                    started = time.monotonic()
                    try:
                        status, _ = http_json(
                            base + "/work", timeout=cfg.probe_timeout
                        )
                        latencies.append(
                            (time.monotonic() - started) * 1000.0
                        )
                        ok = ok and status == 200
                    except OSError:
                        latencies.append(cfg.probe_timeout * 1000.0)
                        ok = False
                work_latency = sum(latencies) / len(latencies)
                work_ok = ok

        rss_mb, cpu_pct = 0.0, 0.0
        if handle.alive():
            rss_mb, cpu_s = _read_proc(handle.pid)
            now = time.monotonic()
            if chain.pid == handle.pid and chain.last_cpu is not None:
                prev_wall, prev_cpu = chain.last_cpu
                wall = max(1e-6, now - prev_wall)
                cpu_pct = max(0.0, (cpu_s - prev_cpu) / wall * 100.0)
            chain.last_cpu = (now, cpu_s)
            chain.pid = handle.pid

        error_rate = float(
            metrics.get("work_error_rate", 0.0 if work_ok else 1.0)
        )
        violated = (
            not up
            or not work_ok
            or work_latency > cfg.slo_latency_ms
            or error_rate > cfg.slo_error_rate
        )
        return LiveSample(
            tick=chain.tick,
            up=up,
            health_ms=health_ms,
            metrics=metrics,
            work_latency_ms=work_latency,
            work_ok=work_ok,
            rss_mb=rss_mb,
            cpu_pct=cpu_pct,
            violated=violated,
        )

    def observe(self, name: str) -> FailureEvent | None:
        """One sampling step for one service; may raise a failure event.

        The exact shape of ``HealingHarness.observe``: append the row,
        refit the baseline while healthy, and hand the SLO bit to the
        debounced detector once the baseline is ready.
        """
        chain = self.chain(name)
        handle = self.supervisor.get(name)
        sample = self.sample(handle, chain)
        chain.last_sample = sample
        row = self.collector.collect(sample.as_mapping())
        chain.store.append(chain.tick, row)
        chain.tick += 1

        healthy = not sample.violated and not chain.detector.in_failure
        # The baseline reduces rows *behind* the current window, so a
        # fit needs baseline_window + current_window rows banked.
        enough = (
            chain.baseline.baseline_window + chain.baseline.current_window
        )
        if healthy and len(chain.store) >= enough:
            chain.baseline.fit_baseline()
        if not chain.baseline.ready:
            return None
        return chain.detector.observe(sample.tick, sample.violated)

    # ------------------------------------------------------------------
    # State for audits and verification.
    # ------------------------------------------------------------------

    def snapshot(self, name: str) -> dict:
        """The latest sample as a flat audit-friendly mapping."""
        chain = self._chains.get(name)
        if chain is None or chain.last_sample is None:
            return {}
        return chain.last_sample.as_mapping()

    def baseline_ready(self, name: str) -> bool:
        chain = self._chains.get(name)
        return chain is not None and chain.baseline.ready
