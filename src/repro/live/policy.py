"""Policy-gated healing actions with a full audit ledger.

The ShieldOps-shaped control plane between "the detector fired" and
"a real process got restarted".  A :class:`HealingPolicy` bounds one
action (``max_retries``, ``cooldown_seconds``, a deterministic
exponential-backoff schedule); the :class:`PolicyEngine` enforces the
policies plus two global guards — a fleet-wide action rate limit and
per-service serialization (two concurrent triggers on one service
execute one at a time, and the loser then sees the winner's cooldown).
Exhausting a policy's retries escalates to the administrator, exactly
like Figure 3's THRESHOLD path in the simulator loop.

Every decision — executed, suppressed, escalated — lands in the
ledger as a :class:`HealingRecord` with before/after state, so the
audit trail answers "what did the system do to itself and did it
work" (Snippet 3's philosophy: auto-heal, but track everything).

Time is injected (``clock``/``sleep``) so tests drive the engine on a
fake clock; backoff delays come from the shared
:class:`repro.core.retry.BackoffPolicy`, jittered deterministically
from the engine seed and the service name.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field

from repro.core.retry import BackoffPolicy

__all__ = [
    "HealingAction",
    "HealingOutcome",
    "HealingPolicy",
    "HealingRecord",
    "HealingTrigger",
    "PolicyDecision",
    "PolicyEngine",
]


class HealingAction(str, enum.Enum):
    """The live recovery actions a policy can authorize."""

    RESTART_SERVICE = "restart_service"
    SCALE_OUT = "scale_out"
    CLEAR_CACHE = "clear_cache"
    FAILOVER = "failover"
    NOTIFY_ADMIN = "notify_admin"


class HealingOutcome(str, enum.Enum):
    """How one authorized action ended."""

    SUCCESS = "success"
    FAILED = "failed"
    TIMEOUT = "timeout"
    SUPPRESSED = "suppressed"
    ESCALATED = "escalated"


class HealingTrigger(str, enum.Enum):
    """Why an action was requested."""

    LIVENESS = "liveness"
    ANOMALY = "anomaly"
    THRESHOLD = "threshold"
    MANUAL = "manual"


@dataclass(frozen=True)
class HealingPolicy:
    """Bounds on one healing action.

    Attributes:
        action: the action this policy governs.
        max_retries: attempts per incident before escalation.
        cooldown_seconds: quiet period per (service, action) after an
            execution; triggers landing inside it are suppressed.
        backoff: delay schedule between an incident's attempts.
    """

    action: HealingAction
    max_retries: int = 3
    cooldown_seconds: float = 10.0
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            base_seconds=0.5, factor=2.0, max_seconds=8.0, jitter=0.1
        )
    )

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )


def default_policies() -> dict[HealingAction, HealingPolicy]:
    """The stock policy set: cheap actions retried more, eagerly."""
    return {
        HealingAction.RESTART_SERVICE: HealingPolicy(
            HealingAction.RESTART_SERVICE, max_retries=3,
            cooldown_seconds=5.0,
        ),
        HealingAction.SCALE_OUT: HealingPolicy(
            HealingAction.SCALE_OUT, max_retries=2, cooldown_seconds=15.0
        ),
        HealingAction.CLEAR_CACHE: HealingPolicy(
            HealingAction.CLEAR_CACHE, max_retries=2, cooldown_seconds=5.0
        ),
        HealingAction.FAILOVER: HealingPolicy(
            HealingAction.FAILOVER, max_retries=2, cooldown_seconds=10.0
        ),
    }


@dataclass
class HealingRecord:
    """One ledger entry: an action (or its suppression) and its end.

    ``duration_seconds`` is wall clock; ``before_state``/``after_state``
    are the adapter's metric snapshots around the action.
    """

    record_id: int
    service: str
    action: HealingAction
    trigger: HealingTrigger
    outcome: HealingOutcome
    attempt: int
    duration_seconds: float = 0.0
    details: str = ""
    before_state: dict = field(default_factory=dict)
    after_state: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "record_id": self.record_id,
            "service": self.service,
            "action": self.action.value,
            "trigger": self.trigger.value,
            "outcome": self.outcome.value,
            "attempt": self.attempt,
            "duration_seconds": round(self.duration_seconds, 6),
            "details": self.details,
            "before_state": dict(self.before_state),
            "after_state": dict(self.after_state),
        }


@dataclass(frozen=True)
class PolicyDecision:
    """Admission verdict for one requested action."""

    allowed: bool
    reason: str
    delay_seconds: float = 0.0
    escalate: bool = False


class PolicyEngine:
    """Admission control + audit ledger for live healing actions.

    Args:
        policies: per-action bounds (defaults cover every action).
        seed: root of the deterministic backoff-jitter stream.
        max_actions_per_minute: fleet-wide execution rate limit; 0
            disables it.
        clock / sleep: injectable time source, for tests.
    """

    def __init__(
        self,
        policies: dict[HealingAction, HealingPolicy] | None = None,
        seed: int = 0,
        max_actions_per_minute: int = 30,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.policies = default_policies()
        if policies:
            self.policies.update(policies)
        self.seed = seed
        self.max_actions_per_minute = max_actions_per_minute
        self.clock = clock
        self.sleep = sleep
        self.records: list[HealingRecord] = []
        self.escalations: list[HealingRecord] = []
        self._cooldown_until: dict[tuple[str, HealingAction], float] = {}
        # Executions inside the trailing rate-limit minute.
        self._executed_at: list[float] = []
        self._locks: dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        self._next_record = 0

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------

    def service_lock(self, service: str) -> threading.Lock:
        """The per-service mutex serializing concurrent triggers."""
        with self._registry_lock:
            lock = self._locks.get(service)
            if lock is None:
                lock = threading.Lock()
                self._locks[service] = lock
            return lock

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------

    def policy_for(self, action: HealingAction) -> HealingPolicy:
        policy = self.policies.get(action)
        if policy is None:
            policy = HealingPolicy(action)
            self.policies[action] = policy
        return policy

    def admit(
        self,
        service: str,
        action: HealingAction,
        attempt: int = 1,
    ) -> PolicyDecision:
        """Decide whether attempt N of an action may execute now.

        Callers must hold :meth:`service_lock` for the service.  The
        decision is pure admission — nothing is recorded until the
        caller reports the execution via :meth:`record`.
        """
        policy = self.policy_for(action)
        now = self.clock()
        if attempt > policy.max_retries:
            return PolicyDecision(
                allowed=False,
                reason=(
                    f"max_retries exhausted "
                    f"({policy.max_retries} attempts)"
                ),
                escalate=True,
            )
        until = self._cooldown_until.get((service, action), 0.0)
        if now < until:
            return PolicyDecision(
                allowed=False,
                reason=f"cooldown ({until - now:.2f}s remaining)",
            )
        if self.max_actions_per_minute > 0:
            window_start = now - 60.0
            self._executed_at = [
                t for t in self._executed_at if t >= window_start
            ]
            if len(self._executed_at) >= self.max_actions_per_minute:
                return PolicyDecision(
                    allowed=False,
                    reason=(
                        "global rate limit "
                        f"({self.max_actions_per_minute}/min)"
                    ),
                )
        delay = 0.0
        if attempt > 1:
            delay = policy.backoff.delay(attempt - 1, self.seed, service)
        return PolicyDecision(allowed=True, reason="admitted",
                              delay_seconds=delay)

    def backoff_schedule(
        self, service: str, action: HealingAction
    ) -> list[float]:
        """The deterministic retry-delay sequence an incident will see."""
        policy = self.policy_for(action)
        return policy.backoff.schedule(
            policy.max_retries - 1, self.seed, service
        )

    # ------------------------------------------------------------------
    # Ledger.
    # ------------------------------------------------------------------

    def record(
        self,
        service: str,
        action: HealingAction,
        trigger: HealingTrigger,
        outcome: HealingOutcome,
        attempt: int,
        duration_seconds: float = 0.0,
        details: str = "",
        before_state: dict | None = None,
        after_state: dict | None = None,
    ) -> HealingRecord:
        """Append one ledger entry; starts cooldowns for executions."""
        with self._registry_lock:
            record = HealingRecord(
                record_id=self._next_record,
                service=service,
                action=action,
                trigger=trigger,
                outcome=outcome,
                attempt=attempt,
                duration_seconds=duration_seconds,
                details=details,
                before_state=dict(before_state or {}),
                after_state=dict(after_state or {}),
            )
            self._next_record += 1
            self.records.append(record)
            if outcome not in (
                HealingOutcome.SUPPRESSED,
                HealingOutcome.ESCALATED,
            ):
                now = self.clock()
                self._executed_at.append(now)
                policy = self.policy_for(action)
                self._cooldown_until[(service, action)] = (
                    now + policy.cooldown_seconds
                )
            if outcome is HealingOutcome.ESCALATED:
                self.escalations.append(record)
            return record

    # ------------------------------------------------------------------
    # Execution wrapper.
    # ------------------------------------------------------------------

    def execute(
        self,
        service: str,
        action: HealingAction,
        trigger: HealingTrigger,
        act,
        verify,
        attempt: int = 1,
        before_state: dict | None = None,
    ) -> HealingRecord:
        """Admit, back off, act, verify, and record one attempt.

        Args:
            act: zero-arg callable performing the action; its return
                value (stringified) becomes the record detail.
            verify: zero-arg callable -> bool, the recovery check run
                after the action.

        Holds the service lock for the whole attempt, so concurrent
        triggers on the same service serialize and the second one
        observes the first's cooldown.
        """
        with self.service_lock(service):
            decision = self.admit(service, action, attempt=attempt)
            if not decision.allowed:
                outcome = (
                    HealingOutcome.ESCALATED
                    if decision.escalate
                    else HealingOutcome.SUPPRESSED
                )
                return self.record(
                    service, action, trigger, outcome, attempt,
                    details=decision.reason,
                    before_state=before_state,
                )
            if decision.delay_seconds > 0:
                self.sleep(decision.delay_seconds)
            started = self.clock()
            try:
                detail = act()
            except Exception as exc:
                return self.record(
                    service, action, trigger, HealingOutcome.FAILED,
                    attempt,
                    duration_seconds=self.clock() - started,
                    details=f"action raised: {exc}",
                    before_state=before_state,
                )
            ok = bool(verify())
            return self.record(
                service, action, trigger,
                HealingOutcome.SUCCESS if ok else HealingOutcome.FAILED,
                attempt,
                duration_seconds=self.clock() - started,
                details=str(detail) if detail is not None else "",
                before_state=before_state,
            )

    # ------------------------------------------------------------------
    # Reporting (the ShieldOps success-rate view).
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """Success-rate summary over the ledger."""
        executed = [
            r for r in self.records
            if r.outcome in (
                HealingOutcome.SUCCESS,
                HealingOutcome.FAILED,
                HealingOutcome.TIMEOUT,
            )
        ]
        wins = sum(
            1 for r in executed if r.outcome is HealingOutcome.SUCCESS
        )
        by_action: dict[str, int] = {}
        by_outcome: dict[str, int] = {}
        for record in self.records:
            by_action[record.action.value] = (
                by_action.get(record.action.value, 0) + 1
            )
            by_outcome[record.outcome.value] = (
                by_outcome.get(record.outcome.value, 0) + 1
            )
        return {
            "total_records": len(self.records),
            "total_executed": len(executed),
            "success_rate_pct": (
                100.0 * wins / len(executed) if executed else 0.0
            ),
            "by_action": by_action,
            "by_outcome": by_outcome,
            "escalations": len(self.escalations),
        }
