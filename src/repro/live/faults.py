"""Execute the Table 1 fault catalog against real processes.

Every failure kind in :data:`repro.faults.catalog.FAILURE_CATALOG`
maps to a live *mode* — the concrete thing done to a running worker:

========== ==========================================================
mode        mechanics
========== ==========================================================
``kill``    SIGKILL the tier's process (crash)
``freeze``  SIGSTOP the process (hang; cleared with SIGCONT)
``latency`` ``POST /control/fault {"extra_latency_ms": ...}``
``errors``  ``POST /control/fault {"error_rate": ...}``
``leak``    ``POST /control/fault {"leak_kb_per_request": ...}``
``saturate`` ``POST /control/fault {"saturate_workers": ...}`` (pool)
========== ==========================================================

The mapping keeps the *symptom family* of the simulator fault: a
``hung_query`` freezes the db worker (requests hang), ``software_aging``
leaks memory in the app worker, a ``load_surge`` saturates the web
worker's pool, and so on.  ``docs/live.md`` carries the full sim↔live
table.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

from repro.faults.catalog import FAILURE_CATALOG
from repro.live.supervisor import Supervisor, http_json

__all__ = ["LIVE_FAULT_MODES", "LiveFault", "LiveFaultDriver"]


@dataclass(frozen=True)
class LiveFault:
    """Live execution recipe for one catalog failure kind."""

    kind: str
    mode: str
    tier: str
    payload: dict

    def describe(self) -> str:
        return f"{self.kind} -> {self.mode}@{self.tier}"


# kind -> (mode, default tier, control payload).  Tiers follow the
# catalog's own targets: db faults hit the db worker, app faults the
# app worker, ingress-shaped faults the web worker.
LIVE_FAULT_MODES: dict[str, LiveFault] = {
    fault.kind: fault
    for fault in (
        LiveFault("deadlocked_threads", "saturate", "app",
                  {"saturate_workers": 8}),
        LiveFault("hung_query", "freeze", "db", {}),
        LiveFault("unhandled_exception", "errors", "app",
                  {"error_rate": 0.5}),
        LiveFault("software_aging", "leak", "app",
                  {"leak_kb_per_request": 256}),
        LiveFault("stale_statistics", "latency", "db",
                  {"extra_latency_ms": 250.0}),
        LiveFault("table_contention", "latency", "db",
                  {"extra_latency_ms": 200.0}),
        LiveFault("buffer_contention", "latency", "db",
                  {"extra_latency_ms": 180.0}),
        LiveFault("tier_capacity_loss", "kill", "db", {}),
        LiveFault("load_surge", "saturate", "web",
                  {"saturate_workers": 8}),
        LiveFault("source_code_bug", "errors", "web",
                  {"error_rate": 0.6}),
        LiveFault("operator_misconfig", "latency", "app",
                  {"extra_latency_ms": 220.0}),
        LiveFault("network_fault", "latency", "web",
                  {"extra_latency_ms": 300.0}),
        LiveFault("transient_glitch", "errors", "web",
                  {"error_rate": 0.5}),
    )
}

# The mapping must cover the catalog exactly: a new Table 1 entry
# without a live recipe is a programming error caught at import.
_missing = {e.kind for e in FAILURE_CATALOG} - set(LIVE_FAULT_MODES)
if _missing:  # pragma: no cover - import-time invariant
    raise RuntimeError(f"live fault mapping misses catalog kinds {_missing}")


class LiveFaultDriver:
    """Inject and clear catalog faults on a supervised fleet.

    Args:
        supervisor: the running fleet.
    """

    def __init__(self, supervisor: Supervisor) -> None:
        self.supervisor = supervisor
        self.active: list[tuple[LiveFault, str]] = []

    def inject(self, kind: str, service: str | None = None) -> str:
        """Execute one catalog fault for real; returns the target name.

        Args:
            kind: a Table 1 failure kind.
            service: override the default tier's service name.
        """
        if kind not in LIVE_FAULT_MODES:
            known = ", ".join(sorted(LIVE_FAULT_MODES))
            raise KeyError(f"unknown live fault kind {kind!r} (known: {known})")
        fault = LIVE_FAULT_MODES[kind]
        target = service if service is not None else fault.tier
        handle = self.supervisor.get(target)
        if fault.mode == "kill":
            if handle.alive():
                os.kill(handle.pid, signal.SIGKILL)
                handle.process.wait(timeout=5.0)
        elif fault.mode == "freeze":
            if handle.alive():
                os.kill(handle.pid, signal.SIGSTOP)
                handle.stopped_signal = True
        else:
            http_json(
                handle.base_url() + "/control/fault",
                payload=fault.payload,
                timeout=2.0,
            )
        self.active.append((fault, target))
        return target

    def clear(self, service: str) -> None:
        """Clear every behavior fault on one (alive) worker."""
        handle = self.supervisor.get(service)
        if handle.stopped_signal and handle.alive():
            os.kill(handle.pid, signal.SIGCONT)
            handle.stopped_signal = False
        if handle.alive():
            try:
                http_json(
                    handle.base_url() + "/control/clear", payload={},
                    timeout=2.0,
                )
            except OSError:
                pass
        self.active = [
            (fault, target) for fault, target in self.active
            if target != service
        ]

    def clear_all(self) -> None:
        for service in {target for _, target in self.active}:
            try:
                self.clear(service)
            except KeyError:
                pass
        self.active = []
