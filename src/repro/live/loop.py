"""The live self-healing loop: Figure 3 against real processes.

Same control flow as :class:`repro.healing.loop.SelfHealingLoop` —
detect, pick an action, apply, verify, retry, escalate — but the
detector consumes real HTTP/``/proc`` samples, actions are policy-
gated through the :class:`PolicyEngine`, and "apply" means a real
restart/scale-out/clear-cache/failover executed by the
:mod:`repro.fixes.live` executors.  The loop reuses the simulator
loop's :class:`AttemptLedger` for its retry bookkeeping: a live
action's *target instance* is the concrete pid it acts on, so a
restart chain (each attempt lands on a fresh pid) stays available
while a repeated clear-cache on the same pid exhausts the kind —
the exact "new target keeps the kind alive" rule the sim loop uses.

Telemetry: every episode is emitted through a PR 6 ``TelemetryHub``
as the same ``episode_start`` / ``phase`` / ``audit`` /
``episode_end`` event shapes the sim loop produces, so ``repro
report`` renders live logs unchanged.  The tick clock is the sample
index; wall-clock durations ride along in the audit details.  Live
event logs are *not* deterministic — see docs/live.md.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fixes.live import build_live_fix
from repro.healing.loop import AttemptLedger
from repro.live.adapter import LiveMetricAdapter
from repro.live.faults import LiveFaultDriver
from repro.live.policy import (
    HealingAction,
    HealingOutcome,
    HealingRecord,
    HealingTrigger,
    PolicyEngine,
)
from repro.live.supervisor import Supervisor
from repro.monitoring.detector import FailureEvent
from repro.telemetry.hub import TelemetryHub

__all__ = ["LiveSelfHealingLoop"]

# Symptom z-score that counts as "this metric is the problem" when
# selecting an action (same order of magnitude as the detector's
# baseline-deviation reasoning; the SLO bit does the detecting).
_ACTION_Z = 2.0
# Metrics snapshotted into audit before/after states.
_STATE_METRICS = 5


class LiveSelfHealingLoop:
    """Heal a supervised fleet of real processes.

    Args:
        supervisor: the running fleet.
        adapter: live sampler (owns the per-service detector chains).
        engine: policy gate + audit ledger.
        hub: telemetry event buffer (fresh one when omitted).
        fault_driver: when given, escalation's "administrator" clears
            the injected behavior faults — the live analogue of the
            sim injector's oracle repair.
        sample_interval: seconds between fleet sampling sweeps.
        verify_samples: max samples to wait for an action to verify.
        stable_samples: consecutive healthy samples that count as
            recovered ("let the service recover fully", Section 4.1).
    """

    def __init__(
        self,
        supervisor: Supervisor,
        adapter: LiveMetricAdapter,
        engine: PolicyEngine,
        hub: TelemetryHub | None = None,
        fault_driver: LiveFaultDriver | None = None,
        sample_interval: float = 0.1,
        verify_samples: int = 20,
        stable_samples: int = 3,
    ) -> None:
        self.supervisor = supervisor
        self.adapter = adapter
        self.engine = engine
        self.hub = hub if hub is not None else TelemetryHub()
        self.fault_driver = fault_driver
        self.sample_interval = sample_interval
        self.verify_samples = verify_samples
        self.stable_samples = stable_samples
        self.episodes: list[dict] = []
        self._next_episode = 0
        self._state_names: list[str] = []

    # ------------------------------------------------------------------
    # The outer loop.
    # ------------------------------------------------------------------

    def run(self, duration_s: float, on_sweep=None) -> list[dict]:
        """Sample the fleet until the deadline; heal what fires.

        Args:
            duration_s: wall-clock budget.
            on_sweep: optional callback(elapsed_s) invoked once per
                sweep — the runner injects scheduled faults from it.

        Returns the episode summaries completed in this run.
        """
        started = time.monotonic()
        completed_before = len(self.episodes)
        deadline = started + duration_s
        while time.monotonic() < deadline:
            sweep_started = time.monotonic()
            if on_sweep is not None:
                on_sweep(sweep_started - started)
            for name in self.supervisor.names():
                event = self.adapter.observe(name)
                if event is not None:
                    self.heal(name, event)
            elapsed = time.monotonic() - sweep_started
            if elapsed < self.sample_interval:
                time.sleep(self.sample_interval - elapsed)
        return self.episodes[completed_before:]

    # ------------------------------------------------------------------
    # One episode.
    # ------------------------------------------------------------------

    def heal(self, service: str, event: FailureEvent) -> dict:
        """Run one live healing episode to success or escalation."""
        episode = self._next_episode
        self._next_episode += 1
        fault_kinds = self._active_fault_kinds(service)
        self._state_names = self._top_symptoms(event)
        self.hub.emit(
            "episode_start",
            episode=episode,
            service=service,
            tick=event.detected_at,
            injected_at=event.detected_at,
            fault_kinds=fault_kinds,
            fault_category="live",
            top_symptoms=list(self._state_names),
        )
        self.hub.emit(
            "phase",
            episode=episode,
            service=service,
            phase="detection",
            start=event.detected_at,
            end=event.detected_at,
        )

        ledger = AttemptLedger()
        recovered = False
        escalated = False
        records: list[HealingRecord] = []
        attempt_no = 0
        primary, trigger = self._select_action(service, event)
        ladder = [primary]
        for fallback in (HealingAction.RESTART_SERVICE, HealingAction.FAILOVER):
            if fallback not in ladder:
                ladder.append(fallback)

        for action in ladder:
            if recovered:
                break
            policy = self.engine.policy_for(action)
            for retry in range(1, policy.max_retries + 1):
                instance = self._target_instance(service)
                if not ledger.allows(action.value):
                    break
                attempt_no += 1
                record = self._attempt(
                    service, action, trigger, episode, attempt_no, retry
                )
                records.append(record)
                fixed = record.outcome is HealingOutcome.SUCCESS
                ledger.note(action.value, instance, fixed)
                if fixed:
                    recovered = True
                    break
                if record.outcome in (
                    HealingOutcome.SUPPRESSED,
                    HealingOutcome.ESCALATED,
                ):
                    # Cooldown/rate-limit or retries spent: this
                    # action is not available to the episode anymore.
                    break
                trigger = HealingTrigger.THRESHOLD

        if not recovered:
            escalated = True
            record = self._escalate(service, episode, attempt_no + 1)
            records.append(record)
            recovered = record.outcome is HealingOutcome.SUCCESS

        end_tick = self.adapter.chain(service).tick
        summary = {
            "episode": episode,
            "service": service,
            "fault_kinds": fault_kinds,
            "detected_at": event.detected_at,
            "recovered": recovered,
            "escalated": escalated,
            "attempts": len(records),
            "records": [record.to_dict() for record in records],
        }
        self.episodes.append(summary)
        self.hub.emit(
            "episode_end",
            episode=episode,
            service=service,
            tick=end_tick,
            recovered=recovered,
            escalated=escalated,
            admin_resolved=escalated and recovered,
            signature="|".join(sorted(fault_kinds)) or f"live:{service}",
            recurrence_count=1,
            recurrence_flagged=False,
            report={
                "injected_at": event.detected_at,
                "recovered_at": end_tick if recovered else None,
                "successful_fix": (
                    records[-1].action.value if recovered else None
                ),
            },
        )
        return summary

    # ------------------------------------------------------------------
    # One policy-gated attempt.
    # ------------------------------------------------------------------

    def _attempt(
        self,
        service: str,
        action: HealingAction,
        trigger: HealingTrigger,
        episode: int,
        attempt_no: int,
        retry: int,
    ) -> HealingRecord:
        before_state = self._capture_state(service)
        start_tick = self.adapter.chain(service).tick
        applied: dict = {}

        def act() -> str:
            fix = build_live_fix(action, service)
            application = fix.apply(self)
            applied["application"] = application
            applied["tick"] = self.adapter.chain(service).tick
            return application.detail

        def verify() -> bool:
            return self._verify(service)

        record = self.engine.execute(
            service,
            action,
            trigger,
            act,
            verify,
            attempt=retry,
            before_state=before_state,
        )
        record.after_state = self._capture_state(service)
        end_tick = self.adapter.chain(service).tick
        if record.outcome in (
            HealingOutcome.SUPPRESSED,
            HealingOutcome.ESCALATED,
        ):
            self._audit(
                service, episode, attempt_no, record,
                tick=end_tick, stage="suppressed",
            )
            return record
        repair_tick = applied.get("tick", start_tick)
        self.hub.emit(
            "phase",
            episode=episode,
            service=service,
            phase="repair",
            attempt=attempt_no,
            fix=action.value,
            target=service,
            start=start_tick,
            end=repair_tick,
        )
        self.hub.emit(
            "phase",
            episode=episode,
            service=service,
            phase="verify",
            attempt=attempt_no,
            fix=action.value,
            start=repair_tick,
            end=end_tick,
            success=record.outcome is HealingOutcome.SUCCESS,
        )
        self._audit(
            service, episode, attempt_no, record, tick=end_tick, stage="fix"
        )
        return record

    def _escalate(
        self, service: str, episode: int, attempt_no: int
    ) -> HealingRecord:
        """Notify the administrator; the human clears the root cause."""
        before_state = self._capture_state(service)
        start_tick = self.adapter.chain(service).tick
        detail = "notified administrator"
        if self.fault_driver is not None:
            try:
                self.fault_driver.clear(service)
                detail = "administrator cleared injected faults"
            except (KeyError, OSError):
                pass
        ok = self._verify(service)
        end_tick = self.adapter.chain(service).tick
        record = self.engine.record(
            service,
            HealingAction.NOTIFY_ADMIN,
            HealingTrigger.THRESHOLD,
            HealingOutcome.SUCCESS if ok else HealingOutcome.ESCALATED,
            attempt_no,
            details=detail,
            before_state=before_state,
            after_state=self._capture_state(service),
        )
        self.hub.emit(
            "phase",
            episode=episode,
            service=service,
            phase="admin_wait",
            start=start_tick,
            end=end_tick,
        )
        self._audit(
            service, episode, attempt_no, record, tick=end_tick,
            stage="escalation_notify",
        )
        return record

    # ------------------------------------------------------------------
    # Verification: health re-check + metric re-sample.
    # ------------------------------------------------------------------

    def _verify(self, service: str) -> bool:
        """Recovery check: a stable streak of healthy live samples."""
        streak = 0
        for _ in range(self.verify_samples):
            time.sleep(self.sample_interval)
            # Keep the rest of the fleet observed during verification,
            # mirroring how the sim loop's _verify still ticks the
            # whole world.
            for name in self.supervisor.names():
                if name != service:
                    self.adapter.observe(name)
            self.adapter.observe(service)
            sample = self.adapter.chain(service).last_sample
            streak = streak + 1 if (sample and not sample.violated) else 0
            if streak >= self.stable_samples:
                return True
        return False

    # ------------------------------------------------------------------
    # Selection and state capture.
    # ------------------------------------------------------------------

    def _select_action(
        self, service: str, event: FailureEvent
    ) -> tuple[HealingAction, HealingTrigger]:
        """Symptom → action: the live fix-identification rules."""
        sample = self.adapter.chain(service).last_sample
        handle = self.supervisor.get(service)
        if sample is None or not sample.up or not handle.alive():
            return HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS
        zscore = self._safe_zscore(event)
        if (
            zscore("live.cache_mb") > _ACTION_Z
            or zscore("live.rss_mb") > _ACTION_Z
        ):
            return HealingAction.CLEAR_CACHE, HealingTrigger.ANOMALY
        if (
            zscore("live.inflight") > _ACTION_Z
            and zscore("live.error_rate") <= _ACTION_Z
        ):
            return HealingAction.SCALE_OUT, HealingTrigger.ANOMALY
        return HealingAction.RESTART_SERVICE, HealingTrigger.ANOMALY

    @staticmethod
    def _safe_zscore(event: FailureEvent):
        def zscore(name: str) -> float:
            try:
                return event.zscore(name)
            except (ValueError, IndexError):
                return 0.0

        return zscore

    def _top_symptoms(self, event: FailureEvent) -> list[str]:
        n = len(event.metric_names)
        z = np.abs(np.asarray(event.symptoms[:n], dtype=float))
        order = np.argsort(-z, kind="stable")[:_STATE_METRICS]
        return [event.metric_names[int(i)] for i in order]

    def _capture_state(self, service: str) -> dict:
        snapshot = self.adapter.snapshot(service)
        if not snapshot:
            return {}
        names = self._state_names or list(snapshot)[:_STATE_METRICS]
        return {
            name: float(snapshot[name]) for name in names if name in snapshot
        }

    def _target_instance(self, service: str) -> str:
        """The concrete thing an attempt acts on (pid-scoped)."""
        try:
            handle = self.supervisor.get(service)
        except KeyError:
            return service
        return f"{service}:{handle.pid}"

    def _active_fault_kinds(self, service: str) -> list[str]:
        if self.fault_driver is None:
            return []
        return sorted(
            fault.kind
            for fault, target in self.fault_driver.active
            if target == service
        )

    def _audit(
        self,
        service: str,
        episode: int,
        attempt_no: int,
        record: HealingRecord,
        tick: int,
        stage: str,
    ) -> None:
        self.hub.emit(
            "audit",
            episode=episode,
            service=service,
            attempt=attempt_no,
            stage=stage,
            trigger_reason=f"{record.trigger.value}",
            action_taken=record.action.value,
            target=service,
            cost_ticks=0,
            detail=record.details,
            before_state=record.before_state,
            after_state=record.after_state,
            success=record.outcome is HealingOutcome.SUCCESS,
            tick=tick,
            outcome=record.outcome.value,
            duration_seconds=round(record.duration_seconds, 3),
        )
