"""Entry points behind ``repro live run|demo``.

``run_live`` owns the whole live lifecycle: bring up a real fleet
(one stub worker per tier), warm each service's baseline with healthy
samples, inject scheduled Table 1 faults for real, let the
:class:`LiveSelfHealingLoop` detect and heal, then tear everything
down and (optionally) write the episode telemetry as a flight-recorder
event log that ``repro report`` renders.

Unlike every sim entry point, a live run is **not** deterministic:
timings are wall clock, ports are OS-assigned, pids are real.  The
*structure* is still asserted — the demo gate checks that the killed
db tier produced a verified-successful restart audit — but bytes of
two runs differ by design (see docs/live.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.live.adapter import AdapterConfig, LiveMetricAdapter
from repro.live.faults import LIVE_FAULT_MODES, LiveFaultDriver
from repro.live.loop import LiveSelfHealingLoop
from repro.live.policy import PolicyEngine
from repro.live.supervisor import ServiceSpec, Supervisor
from repro.telemetry.hub import TelemetryHub, dump_events

__all__ = [
    "FaultSpec",
    "LiveRunResult",
    "format_live",
    "parse_fault_spec",
    "run_demo",
    "run_live",
]

_TIERS = ("web", "app", "db")
# Seconds allowed for every service to assemble a healthy baseline.
_WARM_TIMEOUT = 30.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled live fault injection."""

    kind: str
    service: str | None = None
    at_seconds: float = 0.0


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse ``KIND[@SERVICE][:AT_SECONDS]`` (CLI ``--fault`` syntax).

    Raises ``ValueError`` on an unknown kind or malformed seconds —
    the CLI maps that to a clean exit-2 diagnostic.
    """
    at_seconds = 0.0
    body = text
    if ":" in text:
        body, _, tail = text.partition(":")
        try:
            at_seconds = float(tail)
        except ValueError:
            raise ValueError(
                f"bad fault spec {text!r}: {tail!r} is not a number of "
                "seconds (expected KIND[@SERVICE][:AT_SECONDS])"
            ) from None
        if at_seconds < 0:
            raise ValueError(
                f"bad fault spec {text!r}: injection time must be >= 0"
            )
    service: str | None = None
    kind = body
    if "@" in body:
        kind, _, service = body.partition("@")
    if kind not in LIVE_FAULT_MODES:
        known = ", ".join(sorted(LIVE_FAULT_MODES))
        raise ValueError(
            f"unknown live fault kind {kind!r} (known: {known})"
        )
    return FaultSpec(kind=kind, service=service or None,
                     at_seconds=at_seconds)


@dataclass
class LiveRunResult:
    """What one live run did; the material ``format_live`` renders."""

    seed: int
    duration_s: float
    wall_seconds: float
    services: dict[str, dict]
    injected: list[dict]
    episodes: list[dict]
    engine_report: dict
    ok: bool
    failures: list[str] = field(default_factory=list)
    events_path: str | None = None
    events_sha256: str | None = None


def _service_specs(n_services: int) -> list[ServiceSpec]:
    """The standard fleet shape: web/app/db, then numbered extras."""
    specs = []
    for i in range(n_services):
        name = _TIERS[i] if i < len(_TIERS) else f"svc{i}"
        specs.append(
            ServiceSpec(name=name, tier=_TIERS[min(i, len(_TIERS) - 1)])
        )
    return specs


def _warm_baselines(
    adapter: LiveMetricAdapter, supervisor: Supervisor,
    interval: float, timeout: float = _WARM_TIMEOUT,
) -> None:
    """Sample every service healthy until all baselines are fitted."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for name in supervisor.names():
            adapter.observe(name)
        if all(
            adapter.baseline_ready(name) for name in supervisor.names()
        ):
            return
        time.sleep(interval)
    not_ready = [
        name for name in supervisor.names()
        if not adapter.baseline_ready(name)
    ]
    raise RuntimeError(
        f"baselines not ready after {timeout:.0f}s: {not_ready} — the "
        "workers are up but never produced enough healthy samples"
    )


def run_live(
    n_services: int = 3,
    duration_s: float = 20.0,
    faults: list[FaultSpec] | None = None,
    seed: int = 0,
    events_path: str | None = None,
    sample_interval: float = 0.05,
    config: AdapterConfig | None = None,
    stop_when_healed: bool = True,
) -> LiveRunResult:
    """One supervised live campaign: spawn, warm, inject, heal, reap.

    Args:
        n_services: tiers to run (3 = web/app/db).
        duration_s: sampling budget *after* baseline warm-up.
        faults: scheduled injections (empty = just watch).
        seed: policy-engine jitter seed.
        events_path: write the episode event log (JSONL) here.
        sample_interval: seconds between fleet sweeps.
        config: adapter knobs; defaults are sized for the demo.
        stop_when_healed: return as soon as every injected fault's
            target has a recovered episode (keeps CI fast).
    """
    if n_services < 1:
        raise ValueError(f"n_services must be >= 1, got {n_services}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    faults = list(faults or [])
    if config is None:
        config = AdapterConfig(
            baseline_window=12, current_window=3,
            violation_ticks=2, recovery_ticks=2,
        )
    started = time.monotonic()
    supervisor = Supervisor(_service_specs(n_services))
    hub = TelemetryHub()
    injected: list[dict] = []
    failures: list[str] = []
    pending = sorted(faults, key=lambda f: f.at_seconds)

    with supervisor:
        try:
            supervisor.install_signal_handlers()
        except ValueError:
            # Not the main thread (e.g. under pytest-xdist); teardown
            # still happens via the context manager.
            pass
        adapter = LiveMetricAdapter(supervisor, config=config)
        engine = PolicyEngine(seed=seed)
        driver = LiveFaultDriver(supervisor)
        loop = LiveSelfHealingLoop(
            supervisor,
            adapter,
            engine,
            hub=hub,
            fault_driver=driver,
            sample_interval=sample_interval,
        )
        _warm_baselines(adapter, supervisor, sample_interval)

        def on_sweep(elapsed: float) -> None:
            while pending and pending[0].at_seconds <= elapsed:
                spec = pending.pop(0)
                target = driver.inject(spec.kind, spec.service)
                injected.append(
                    {
                        "kind": spec.kind,
                        "service": target,
                        "mode": LIVE_FAULT_MODES[spec.kind].mode,
                        "at_seconds": round(elapsed, 3),
                    }
                )

        deadline = time.monotonic() + duration_s
        targets = {
            spec.service
            or LIVE_FAULT_MODES[spec.kind].tier for spec in faults
        }
        while time.monotonic() < deadline:
            chunk = min(1.0, deadline - time.monotonic())
            if chunk <= 0:
                break
            loop.run(chunk, on_sweep=on_sweep)
            if stop_when_healed and not pending and targets:
                healed = {
                    episode["service"]
                    for episode in loop.episodes
                    if episode["recovered"]
                }
                if targets <= healed:
                    break

        services = {
            name: {
                "pid": handle.pid,
                "port": handle.port,
                "tier": handle.spec.tier,
                "restarts": handle.restarts,
            }
            for name, handle in supervisor.services.items()
        }
        episodes = list(loop.episodes)
        engine_report = engine.report()
        driver.clear_all()

    # Structural gate: every scheduled fault must have produced a
    # recovered episode on its target.
    for spec in faults:
        target = spec.service or LIVE_FAULT_MODES[spec.kind].tier
        recovered = [
            episode for episode in episodes
            if episode["service"] == target and episode["recovered"]
        ]
        if not recovered:
            failures.append(
                f"{spec.kind}@{target}: no recovered healing episode"
            )
    if pending:
        failures.append(
            f"{len(pending)} scheduled fault(s) never injected "
            f"(duration too short)"
        )

    result = LiveRunResult(
        seed=seed,
        duration_s=duration_s,
        wall_seconds=time.monotonic() - started,
        services=services,
        injected=injected,
        episodes=episodes,
        engine_report=engine_report,
        ok=not failures,
        failures=failures,
    )
    if events_path is not None:
        header = {
            "kind": "live",
            "backend": "live",
            "seed": seed,
            "services": sorted(services),
            "clock": "samples",
        }
        result.events_sha256 = dump_events(
            events_path, header, [hub.events]
        )
        result.events_path = events_path
    return result


def run_demo(
    seed: int = 0,
    budget_s: float = 45.0,
    events_path: str | None = None,
) -> LiveRunResult:
    """The CI smoke scenario: kill the db tier, demand a healed fleet.

    Three tiers come up; ``tier_capacity_loss`` SIGKILLs the db worker
    shortly after baselines warm.  The gate (``result.ok``) is the
    PR's acceptance check — the detector must fire from real samples
    and the policy engine must produce a **verified successful
    restart** audit for the db service.
    """
    result = run_live(
        n_services=3,
        duration_s=budget_s,
        faults=[FaultSpec("tier_capacity_loss", "db", at_seconds=0.5)],
        seed=seed,
        events_path=events_path,
        stop_when_healed=True,
    )
    # The demo is stricter than the generic gate: the successful
    # record must be a restart-style action with verification.
    if result.ok:
        healed = [
            record
            for episode in result.episodes
            if episode["service"] == "db" and episode["recovered"]
            for record in episode["records"]
            if record["outcome"] == "success"
        ]
        if not healed:
            result.ok = False
            result.failures.append(
                "db recovered without a successful audit record"
            )
        elif healed[-1]["action"] not in (
            "restart_service", "failover", "notify_admin"
        ):
            result.ok = False
            result.failures.append(
                f"db healed by unexpected action {healed[-1]['action']!r}"
            )
    return result


def format_live(result: LiveRunResult) -> str:
    """Human report for one live run (mirrors ``format_fleet``'s tone)."""
    lines = [
        (
            f"Live backend: {len(result.services)} real services, "
            f"{result.wall_seconds:.1f}s wall "
            f"(budget {result.duration_s:.0f}s, seed {result.seed})"
        ),
        "NOTE: live runs are wall-clock best-effort; only the sim "
        "backend is bit-exact.",
        "",
        "services:",
    ]
    for name, info in sorted(result.services.items()):
        lines.append(
            f"  {name:<12} tier={info['tier']:<4} pid={info['pid']:<7} "
            f"port={info['port']:<6} restarts={info['restarts']}"
        )
    if result.injected:
        lines.append("")
        lines.append("injected faults:")
        for fault in result.injected:
            lines.append(
                f"  t+{fault['at_seconds']:>5.1f}s  "
                f"{fault['kind']:<20} -> {fault['service']} "
                f"({fault['mode']})"
            )
    lines.append("")
    if result.episodes:
        lines.append("healing episodes:")
        for episode in result.episodes:
            outcome = (
                "recovered" if episode["recovered"] else "NOT RECOVERED"
            )
            if episode["escalated"]:
                outcome += " (escalated)"
            kinds = ",".join(episode["fault_kinds"]) or "unattributed"
            lines.append(
                f"  #{episode['episode']} {episode['service']:<8} "
                f"{kinds:<22} attempts={episode['attempts']} {outcome}"
            )
            for record in episode["records"]:
                lines.append(
                    f"      {record['action']:<16} "
                    f"attempt {record['attempt']} "
                    f"-> {record['outcome']:<10} "
                    f"[{record['duration_seconds']:.2f}s] "
                    f"{record['details']}"
                )
    else:
        lines.append("healing episodes: none (fleet stayed healthy)")
    report = result.engine_report
    lines.append("")
    lines.append(
        f"policy engine: {report['total_executed']} executed, "
        f"success rate {report['success_rate_pct']:.0f}%, "
        f"{report['escalations']} escalations, "
        f"{report['total_records']} ledger records"
    )
    if result.events_path is not None:
        lines.append(
            f"events: {result.events_path} "
            f"(sha256 {result.events_sha256})"
        )
    if result.failures:
        lines.append("")
        lines.append("GATE FAILURES:")
        lines.extend(f"  - {failure}" for failure in result.failures)
    else:
        lines.append("gate: ok")
    return "\n".join(lines)
