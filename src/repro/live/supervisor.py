"""Process supervision for the live backend.

The pikehouse-style process model: one supervisor process spawns a
stub worker per tier, knows every child's pid and port, health-checks
over HTTP, and owns the *mechanics* of recovery — restart, scale-out,
standby failover — while the policy engine owns the decisions.

Teardown is the hard invariant: whatever happens — normal exit,
exception, SIGINT, SIGTERM — no child outlives the supervisor and no
port stays held.  ``stop()`` is idempotent, SIGTERMs the children,
escalates to SIGKILL after a grace period, SIGCONTs frozen processes
first (a SIGSTOPped child cannot handle SIGTERM), and ``wait()``s
every child so nothing is left as a zombie for the caller to reap.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

__all__ = [
    "ServiceSpec",
    "SupervisedProcess",
    "Supervisor",
    "http_json",
]

# Seconds a child gets between SIGTERM and SIGKILL at teardown.
_TERM_GRACE = 3.0
# Seconds to wait for a freshly spawned worker to answer /health.
_STARTUP_TIMEOUT = 10.0


def http_json(
    url: str,
    payload: dict | None = None,
    timeout: float = 1.0,
) -> tuple[int, dict]:
    """One HTTP round-trip returning ``(status, parsed JSON body)``.

    GET when ``payload`` is None, POST otherwise.  Raises ``OSError``
    (or a subclass) when the peer is unreachable; an HTTP error status
    is returned, not raised — the live layer treats 5xx as data.
    """
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            status = response.status
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status = exc.code
    try:
        parsed = json.loads(body.decode("utf-8")) if body else {}
    except (ValueError, UnicodeDecodeError):
        parsed = {}
    return status, parsed if isinstance(parsed, dict) else {}


@dataclass(frozen=True)
class ServiceSpec:
    """Launch description of one worker."""

    name: str
    tier: str
    base_latency_ms: float = 2.0


@dataclass
class SupervisedProcess:
    """One running worker and what the supervisor knows about it."""

    spec: ServiceSpec
    process: subprocess.Popen
    port: int
    started_at: float = field(default_factory=time.monotonic)
    restarts: int = 0
    stopped_signal: bool = False  # SIGSTOPped by the fault driver

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def name(self) -> str:
        return self.spec.name

    def alive(self) -> bool:
        return self.process.poll() is None

    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"


class Supervisor:
    """Spawn, watch, and recover a set of stub workers.

    Args:
        specs: the workers to run (one per tier, typically).
        python: interpreter for the children (defaults to this one).
        startup_timeout: seconds to wait for a child's /health.
    """

    def __init__(
        self,
        specs: list[ServiceSpec],
        python: str = sys.executable,
        startup_timeout: float = _STARTUP_TIMEOUT,
    ) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service names in {names}")
        self.specs = list(specs)
        self.python = python
        self.startup_timeout = startup_timeout
        self.services: dict[str, SupervisedProcess] = {}
        # Scale-out replicas, grouped under the service they extend.
        self.replicas: dict[str, list[SupervisedProcess]] = {}
        self._lock = threading.RLock()
        self._stopped = False
        self._prev_handlers: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "Supervisor":
        try:
            for spec in self.specs:
                self.services[spec.name] = self._spawn(spec)
        except Exception:
            self.stop()
            raise
        return self

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn(self, spec: ServiceSpec) -> SupervisedProcess:
        """Launch one worker and wait until it serves /health."""
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        process = subprocess.Popen(
            [
                self.python,
                "-m",
                "repro.live.stub_service",
                "--name",
                spec.name,
                "--tier",
                spec.tier,
                "--port",
                "0",
                "--base-latency-ms",
                str(spec.base_latency_ms),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            port = self._read_ready_line(process)
            handle = SupervisedProcess(spec=spec, process=process, port=port)
            self._wait_healthy(handle, self.startup_timeout)
        except Exception:
            self._terminate(process)
            raise
        return handle

    @staticmethod
    def _read_ready_line(process: subprocess.Popen) -> int:
        """Parse the child's ready line (it carries the bound port)."""
        assert process.stdout is not None
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"worker pid {process.pid} exited before becoming ready "
                f"(exit code {process.poll()})"
            )
        try:
            ready = json.loads(line)
            port = int(ready["port"])
        except (ValueError, KeyError, TypeError) as exc:
            raise RuntimeError(
                f"worker pid {process.pid} printed a bad ready line: "
                f"{line!r}"
            ) from exc
        # Nothing else is ever written to stdout; close the pipe so a
        # chatty child can never block on a full buffer.
        process.stdout.close()
        return port

    def _wait_healthy(
        self, handle: SupervisedProcess, timeout: float
    ) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not handle.alive():
                raise RuntimeError(
                    f"worker {handle.name} (pid {handle.pid}) died during "
                    f"startup (exit code {handle.process.poll()})"
                )
            if self.health_check(handle):
                return
            time.sleep(0.02)
        raise RuntimeError(
            f"worker {handle.name} did not become healthy within "
            f"{timeout:.1f}s"
        )

    def stop(self) -> None:
        """Tear everything down; safe to call twice, safe mid-start."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            handles = list(self.services.values())
            for group in self.replicas.values():
                handles.extend(group)
            self.services = {}
            self.replicas = {}
        for handle in handles:
            # A frozen child cannot see SIGTERM; thaw it first.
            self._signal(handle, signal.SIGCONT)
            self._terminate(handle.process)

    @staticmethod
    def _terminate(process: subprocess.Popen) -> None:
        if process.poll() is None:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
            try:
                process.wait(timeout=_TERM_GRACE)
            except subprocess.TimeoutExpired:
                try:
                    process.kill()
                except OSError:  # pragma: no cover - already gone
                    pass
                process.wait(timeout=_TERM_GRACE)
        else:
            # Reap the zombie.
            process.wait()
        if process.stdout is not None and not process.stdout.closed:
            process.stdout.close()

    # ------------------------------------------------------------------
    # Signal-clean shutdown.
    # ------------------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """Make SIGINT/SIGTERM tear the fleet down before exiting.

        The handler stops every child (reaping them), restores the
        previous handler, and re-raises the signal so the process
        exits with the conventional 128+signum status.
        """

        def handler(signum: int, frame) -> None:  # pragma: no cover
            self.stop()
            previous = self._prev_handlers.get(signum, signal.SIG_DFL)
            signal.signal(signum, previous)  # type: ignore[arg-type]
            os.kill(os.getpid(), signum)

        for signum in (signal.SIGINT, signal.SIGTERM):
            self._prev_handlers[signum] = signal.signal(signum, handler)

    # ------------------------------------------------------------------
    # Observation.
    # ------------------------------------------------------------------

    def get(self, name: str) -> SupervisedProcess:
        with self._lock:
            if name not in self.services:
                raise KeyError(f"unknown service {name!r}")
            return self.services[name]

    def names(self) -> list[str]:
        with self._lock:
            return list(self.services)

    def reap(self) -> list[str]:
        """Collect exited children (no zombies); returns their names."""
        dead = []
        with self._lock:
            handles = list(self.services.values())
        for handle in handles:
            if handle.process.poll() is not None:
                dead.append(handle.name)
        return dead

    def health_check(
        self, handle: SupervisedProcess, timeout: float = 0.5
    ) -> bool:
        """One HTTP liveness probe; False on any failure."""
        if not handle.alive():
            return False
        try:
            status, _ = http_json(
                handle.base_url() + "/health", timeout=timeout
            )
        except OSError:
            return False
        return status == 200

    # ------------------------------------------------------------------
    # Recovery mechanics (invoked by the live fixes).
    # ------------------------------------------------------------------

    def restart(self, name: str) -> SupervisedProcess:
        """Kill (if needed) and relaunch one worker on a fresh port."""
        with self._lock:
            old = self.get(name)
            self._signal(old, signal.SIGCONT)
            self._terminate(old.process)
            fresh = self._spawn(old.spec)
            fresh.restarts = old.restarts + 1
            self.services[name] = fresh
            return fresh

    def scale_out(self, name: str) -> SupervisedProcess:
        """Start one extra replica of a service (fresh port)."""
        with self._lock:
            primary = self.get(name)
            index = len(self.replicas.get(name, ())) + 1
            spec = ServiceSpec(
                name=f"{name}-replica{index}",
                tier=primary.spec.tier,
                base_latency_ms=primary.spec.base_latency_ms,
            )
            handle = self._spawn(spec)
            self.replicas.setdefault(name, []).append(handle)
            return handle

    def failover(self, name: str) -> SupervisedProcess:
        """Replace a worker with a standby on a new port.

        The standby is spawned and health-checked *before* the old
        process is retired, so the service's unavailability window is
        one dict swap, not a full restart.
        """
        with self._lock:
            old = self.get(name)
            standby = self._spawn(old.spec)
            standby.restarts = old.restarts + 1
            self.services[name] = standby
            self._signal(old, signal.SIGCONT)
            self._terminate(old.process)
            return standby

    def _signal(self, handle: SupervisedProcess, signum: int) -> None:
        if handle.alive():
            try:
                os.kill(handle.pid, signum)
            except OSError:  # pragma: no cover - raced with exit
                pass
        if signum == signal.SIGCONT:
            handle.stopped_signal = False


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Standalone supervisor: start N workers, idle until signalled.

    Exists for the teardown-under-signal test (and manual poking): the
    test starts this as a subprocess, reads the children's pids from
    stdout, SIGTERMs the supervisor, and asserts every child is gone.
    """
    import argparse

    parser = argparse.ArgumentParser(prog="repro.live.supervisor")
    parser.add_argument("--services", type=int, default=3)
    parser.add_argument(
        "--idle", type=float, default=60.0, help="seconds to idle"
    )
    args = parser.parse_args(argv)
    tiers = ("web", "app", "db")
    specs = [
        ServiceSpec(name=tiers[i] if i < 3 else f"svc{i}",
                    tier=tiers[min(i, 2)])
        for i in range(args.services)
    ]
    supervisor = Supervisor(specs)
    supervisor.install_signal_handlers()
    with supervisor:
        print(
            json.dumps(
                {
                    "supervisor": os.getpid(),
                    "children": {
                        name: {
                            "pid": handle.pid,
                            "port": handle.port,
                        }
                        for name, handle in supervisor.services.items()
                    },
                }
            ),
            flush=True,
        )
        deadline = time.monotonic() + args.idle
        while time.monotonic() < deadline:
            time.sleep(0.1)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
