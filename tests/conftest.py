"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def service() -> MultitierService:
    """A fresh default service."""
    return MultitierService(ServiceConfig(seed=11))


@pytest.fixture
def warm_service() -> MultitierService:
    """A service run past transients, SLO-compliant."""
    svc = MultitierService(ServiceConfig(seed=11))
    svc.run(30)
    return svc


@pytest.fixture
def blob_data(rng):
    """Separable 4-class blobs with nuisance dimensions."""
    n, d_inf, d_noise, k = 400, 5, 8, 4
    centers = rng.normal(0, 6, size=(k, d_inf))
    labels = rng.integers(0, k, n)
    features = np.hstack(
        [
            centers[labels] + rng.normal(0, 1.0, (n, d_inf)),
            rng.normal(0, 1.0, (n, d_noise)),
        ]
    )
    return features, labels
