"""Tests for the docs link/anchor linter (tools/check_links.py).

The CI docs job gates on this script's exit status, so the linter is
itself under test: file links, heading anchors, fences, and the exit
codes the workflow relies on.
"""

import importlib.util
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_links.py"


@pytest.fixture(scope="module")
def check_links():
    spec = importlib.util.spec_from_file_location("check_links", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def docs_tree(tmp_path):
    (tmp_path / "guide.md").write_text(
        "# The Guide\n"
        "\n"
        "## Setting up\n"
        "\n"
        "## Setting up\n"  # duplicate heading -> setting-up-1
        "\n"
        "## `code` & Symbols!\n"
    )
    (tmp_path / "index.md").write_text(
        "# Index\n"
        "\n"
        "[guide](guide.md)\n"
        "[section](guide.md#setting-up)\n"
        "[dup](guide.md#setting-up-1)\n"
        "[sym](guide.md#code--symbols)\n"
        "[self](#index)\n"
        "\n"
        "```\n"
        "[not a link](inside/a/fence.md)\n"
        "```\n"
        "[http](https://example.com/missing.md#nope)\n"
    )
    return tmp_path


class TestSlugify:
    def test_github_style_slugs(self, check_links):
        assert check_links.slugify("Setting up") == "setting-up"
        assert check_links.slugify("`code` & Symbols!") == "code--symbols"
        assert check_links.slugify("A_b - c") == "a_b---c"

    def test_anchor_extraction_dedupes(self, check_links, docs_tree):
        anchors = check_links.markdown_anchors(docs_tree / "guide.md")
        assert {"the-guide", "setting-up", "setting-up-1"} <= anchors


class TestChecker:
    def test_ok_tree_passes(self, check_links, docs_tree, capsys):
        assert check_links.main([str(docs_tree)]) == 0
        assert "0 broken link(s)" in capsys.readouterr().out

    def test_missing_file_fails(self, check_links, docs_tree, capsys):
        (docs_tree / "index.md").write_text("[gone](missing.md)\n")
        assert check_links.main([str(docs_tree)]) == 1
        assert "broken link -> missing.md" in capsys.readouterr().out

    def test_broken_anchor_fails(self, check_links, docs_tree, capsys):
        (docs_tree / "index.md").write_text("[bad](guide.md#no-such)\n")
        assert check_links.main([str(docs_tree)]) == 1
        assert "broken anchor -> guide.md#no-such" in capsys.readouterr().out

    def test_broken_inpage_anchor_fails(self, check_links, docs_tree):
        (docs_tree / "index.md").write_text("# Index\n[bad](#nowhere)\n")
        assert check_links.main([str(docs_tree)]) == 1

    def test_fenced_links_are_ignored(self, check_links, tmp_path):
        (tmp_path / "a.md").write_text(
            "# A\n```\n[x](gone.md)\n```\n"
        )
        assert check_links.main([str(tmp_path)]) == 0

    def test_anchor_into_non_markdown_only_checks_existence(
        self, check_links, tmp_path
    ):
        (tmp_path / "data.json").write_text("{}")
        (tmp_path / "a.md").write_text("[d](data.json#whatever)\n")
        assert check_links.main([str(tmp_path)]) == 0

    def test_no_arguments_exits_2(self, check_links):
        assert check_links.main([]) == 2

    def test_no_markdown_found_exits_2(self, check_links, tmp_path):
        (tmp_path / "x.txt").write_text("hi")
        assert check_links.main([str(tmp_path / "x.txt")]) == 2

    def test_repo_docs_are_clean(self, check_links):
        root = Path(__file__).resolve().parents[2]
        assert (
            check_links.main(
                [str(root / "README.md"), str(root / "docs")]
            )
            == 0
        )
