"""Unit tests for healing spans, recurrence, aggregation, rendering."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import run_campaign
from repro.scenarios.runner import build_approach, run_scenario
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService
from repro.telemetry import (
    HealingTelemetry,
    aggregate_events,
    format_report,
    load_events,
    render_prometheus,
)
from repro.telemetry.healing import _scrub


@pytest.fixture(scope="module")
def campaign_events():
    telemetry = HealingTelemetry(member=0)
    run_campaign(
        build_approach("signature"),
        n_episodes=4,
        seed=13,
        service=MultitierService(ServiceConfig(seed=13)),
        telemetry=telemetry,
    )
    return telemetry.events


class TestHealingSpans:
    def test_every_episode_is_a_complete_span_tree(self, campaign_events):
        starts = [e for e in campaign_events if e["type"] == "episode_start"]
        ends = [e for e in campaign_events if e["type"] == "episode_end"]
        assert starts and len(starts) == len(ends)
        for start in starts:
            episode = start["episode"]
            phases = [
                e
                for e in campaign_events
                if e["type"] == "phase" and e["episode"] == episode
            ]
            names = [p["phase"] for p in phases]
            # Detection always opens the tree; a recovered episode
            # closes with a successful verify.
            assert names[0] == "detection"
            assert all(
                p["end"] >= p["start"] for p in phases
            ), f"negative span in episode {episode}"
            end = next(e for e in ends if e["episode"] == episode)
            if end["recovered"] and not end["admin_resolved"]:
                verifies = [p for p in phases if p["phase"] == "verify"]
                assert verifies and verifies[-1]["success"]

    def test_audit_records_follow_snippet3_shape(self, campaign_events):
        audits = [e for e in campaign_events if e["type"] == "audit"]
        assert audits
        for audit in audits:
            for key in (
                "trigger_reason",
                "action_taken",
                "before_state",
                "after_state",
                "success",
                "stage",
            ):
                assert key in audit, f"audit missing {key}"
            # Snapshots compare the same fixed metric set.
            assert set(audit["before_state"]) == set(audit["after_state"])
        first = [a for a in audits if a["attempt"] == 1 and a["stage"] == "fix"]
        assert all(
            a["trigger_reason"].startswith("slo-violation:") for a in first
        )
        retries = [
            a for a in audits if a["attempt"] > 1 and a["stage"] == "fix"
        ]
        assert all(
            a["trigger_reason"].startswith("failed-fix:") for a in retries
        )

    def test_embedded_report_round_trips(self, campaign_events):
        from repro.healing.report import EpisodeReport

        ends = [e for e in campaign_events if e["type"] == "episode_end"]
        for end in ends:
            report = EpisodeReport.from_dict(end["report"])
            assert report.to_dict() == end["report"]


class TestRecurrence:
    def test_repeated_signature_flags_at_k(self):
        from repro.healing.report import EpisodeReport

        telemetry = HealingTelemetry(member=0, recurrence_k=3)
        flags = []
        for i in range(4):
            report = EpisodeReport(
                event_id=i,
                fault_kinds=("deadlock",),
                fault_category="software",
                injected_at=10 * i,
                detected_at=10 * i + 2,
                recovered_at=10 * i + 5,
            )
            telemetry.episode_end(report)
            flags.append(telemetry.events[-1])
        assert [e["recurrence_count"] for e in flags] == [1, 2, 3, 4]
        assert [e["recurrence_flagged"] for e in flags] == [
            False,
            False,
            True,
            True,
        ]
        assert flags[0]["signature"] == "deadlock"

    def test_window_expires_old_occurrences(self):
        from repro.healing.report import EpisodeReport

        telemetry = HealingTelemetry(
            member=0, recurrence_k=2, recurrence_window=2
        )

        def end(i, kinds):
            telemetry.episode_end(
                EpisodeReport(
                    event_id=i,
                    fault_kinds=kinds,
                    fault_category="unknown",
                    injected_at=i,
                    detected_at=i + 1,
                )
            )
            return telemetry.events[-1]["recurrence_flagged"]

        assert end(0, ("deadlock",)) is False
        assert end(1, ("leak",)) is False
        # The deadlock at episode 0 has slid out of the 2-wide window.
        assert end(2, ("deadlock",)) is False
        assert end(3, ("deadlock",)) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            HealingTelemetry(recurrence_k=0)
        with pytest.raises(ValueError):
            HealingTelemetry(recurrence_window=0)


class TestScrub:
    def test_hung_txn_ids_are_canonicalized(self):
        assert _scrub("killed hung-17") == "killed hung-*"
        assert _scrub({"t": ["hung-1", 3]}) == {"t": ["hung-*", 3]}
        assert _scrub(5) == 5


class TestAggregation:
    def test_counters_match_event_counts(self, campaign_events):
        agg = aggregate_events(campaign_events)
        counters = agg["counters"]
        ends = [e for e in campaign_events if e["type"] == "episode_end"]
        episodes = sum(
            v for (name, _), v in counters.items()
            if name == "repro_episodes_total"
        )
        assert episodes == len(ends)
        audits = [e for e in campaign_events if e["type"] == "audit"]
        fixes = sum(
            v for (name, _), v in counters.items()
            if name == "repro_fix_applications_total"
        )
        assert fixes == len(audits)

    def test_phase_histogram_buckets_sum_to_count(self, campaign_events):
        agg = aggregate_events(campaign_events)
        hists = agg["histograms"]
        phase_hists = [
            h for (name, _), h in hists.items() if name == "repro_phase_ticks"
        ]
        assert phase_hists
        for hist in phase_hists:
            assert sum(hist.counts) == hist.count

    def test_prometheus_text_is_stable_and_well_formed(self, campaign_events):
        agg = aggregate_events(campaign_events)
        text = render_prometheus(agg)
        assert text == render_prometheus(aggregate_events(campaign_events))
        assert "# HELP repro_episodes_total" in text
        assert "# TYPE repro_phase_ticks histogram" in text
        assert 'le="+Inf"' in text
        # Every non-comment line is "name{labels} value".
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name and float(value) >= 0

    def test_unknown_event_types_are_ignored(self):
        agg = aggregate_events([{"type": "mystery", "seq": 0}])
        assert agg == {"counters": {}, "histograms": {}}


class TestFormatReport:
    def test_report_renders_phase_timeline(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        run_scenario("flash_crowd", seed=7, n_episodes=2, events_path=path)
        header, events = load_events(path)
        text = format_report(header, events)
        assert "flight recording (repro-events/1)" in text
        assert "scenario=flash_crowd" in text
        assert "detection" in text and "repair #1" in text
        assert "audit #1" in text
        assert "summary" in text
        # A campaign log has no fleet section.
        assert "fleet health" not in text

    def test_report_renders_fleet_health(self, tmp_path):
        from repro.fleet.campaign import run_fleet_campaign

        path = str(tmp_path / "fleet.jsonl")
        run_fleet_campaign(
            n_services=2,
            episodes_per_service=2,
            seed=5,
            events_path=path,
        )
        header, events = load_events(path)
        text = format_report(header, events)
        assert "fleet health" in text
        assert "entries published" in text
        assert "watermark lag" in text

    def test_empty_log_renders_placeholder(self):
        text = format_report({"schema": "repro-events/1"}, [])
        assert "no healing episodes recorded" in text
