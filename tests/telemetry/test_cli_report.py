"""``repro report`` / ``--events`` CLI contract tests.

Same error contract as the rest of the CLI (PR 5): bad input produces
a clean ``error:`` diagnostic on stderr and exit code 2, success exits
0 — never a traceback for a malformed file.
"""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def recorded_events(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("events") / "events.jsonl")
    code = main(
        [
            "scenario",
            "run",
            "flash_crowd",
            "--seed",
            "7",
            "--episodes",
            "2",
            "--events",
            path,
        ]
    )
    assert code == 0
    return path


class TestReportCommand:
    def test_report_renders_recorded_log(self, recorded_events, capsys):
        assert main(["report", recorded_events]) == 0
        out = capsys.readouterr().out
        assert "flight recording (repro-events/1)" in out
        assert "episode 0" in out

    def test_report_writes_prometheus_snapshot(
        self, recorded_events, tmp_path, capsys
    ):
        prom = str(tmp_path / "metrics.prom")
        assert main(["report", recorded_events, "--prom", prom]) == 0
        text = open(prom, "r", encoding="utf-8").read()
        assert "# TYPE repro_episodes_total counter" in text
        assert "wrote prometheus snapshot" in capsys.readouterr().out

    def test_missing_events_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such.jsonl")
        assert main(["report", missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no-such.jsonl" in err

    def test_malformed_events_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not jsonl\n")
        assert main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not an event log" in err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "schema.jsonl"
        bad.write_text('{"type":"header","schema":"other/1"}\n')
        assert main(["report", str(bad)]) == 2
        assert "unknown event schema" in capsys.readouterr().err

    def test_trace_file_is_rejected_not_misrendered(
        self, tmp_path, capsys
    ):
        """A replay *trace* (repro-trace family) is a different format;
        feeding it to ``report`` must fail cleanly, not render junk."""
        trace = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "flash_crowd",
                    "--seed",
                    "7",
                    "--episodes",
                    "1",
                    "--record",
                    trace,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", trace]) == 2
        assert "error:" in capsys.readouterr().err


class TestEventsFlags:
    def test_fleet_events_flag_records_and_reports(self, tmp_path, capsys):
        path = str(tmp_path / "fleet.jsonl")
        code = main(
            [
                "fleet",
                "--services",
                "2",
                "--episodes",
                "2",
                "--events",
                path,
            ]
        )
        assert code == 0
        assert f"events: {path}" in capsys.readouterr().out
        assert main(["report", path]) == 0
        assert "fleet health" in capsys.readouterr().out
