"""Flight-recorder determinism and observe-only guarantees.

Two hard contracts from the telemetry design:

* the event-log bytes are a pure function of the campaign seed — the
  same run recorded twice, or sharded across any worker count, hashes
  identically; and
* telemetry *observes, never mutates*: every campaign statistic is
  bit-identical with recording on or off.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.experiments.campaign import run_campaign
from repro.fleet.campaign import run_fleet_campaign
from repro.scenarios.corpus import fingerprint_fleet, fingerprint_result
from repro.scenarios.runner import build_approach, run_scenario
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService
from repro.telemetry import HealingTelemetry, load_events


def _sha(path) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


class TestByteDeterminism:
    def test_same_seed_writes_byte_identical_jsonl(self, tmp_path):
        shas = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.jsonl")
            run = run_scenario(
                "flash_crowd", seed=7, n_episodes=3, events_path=path
            )
            assert run.events_sha256 == _sha(path)
            shas.append(run.events_sha256)
        assert shas[0] == shas[1]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_fleet_writes_serial_bytes(self, tmp_path, workers):
        """The canonical stream order (coordinator, then members by
        index) makes the log independent of execution interleaving."""
        paths = {}
        for label, n_workers in (("serial", 1), ("sharded", workers)):
            path = str(tmp_path / f"{label}-{n_workers}.jsonl")
            result = run_fleet_campaign(
                n_services=4,
                episodes_per_service=2,
                seed=23,
                workers=n_workers,
                events_path=path,
            )
            assert result.events_sha256 == _sha(path)
            paths[label] = (path, result.events_sha256)
        assert paths["serial"][1] == paths["sharded"][1]
        # Not just equal hashes of different layouts: identical files.
        serial_bytes = open(paths["serial"][0], "rb").read()
        sharded_bytes = open(paths["sharded"][0], "rb").read()
        assert serial_bytes == sharded_bytes

    def test_header_carries_campaign_identity_not_topology(self, tmp_path):
        """Worker count is execution topology, not campaign identity —
        it must not appear in the header (it would break cross-worker
        byte equality)."""
        path = str(tmp_path / "fleet.jsonl")
        run_fleet_campaign(
            n_services=2,
            episodes_per_service=2,
            seed=5,
            workers=2,
            events_path=path,
        )
        header, _ = load_events(path)
        assert header["kind"] == "fleet"
        assert header["seed"] == 5
        assert header["n_services"] == 2
        assert "workers" not in header


class TestObserveOnly:
    def test_single_service_stats_identical_with_telemetry(self):
        results = {}
        for label in ("off", "on"):
            service = MultitierService(ServiceConfig(seed=13))
            telemetry = HealingTelemetry(member=0) if label == "on" else None
            results[label] = run_campaign(
                build_approach("signature"),
                n_episodes=4,
                seed=13,
                service=service,
                telemetry=telemetry,
            )
        assert fingerprint_result(results["off"]) == fingerprint_result(
            results["on"]
        )

    def test_fleet_stats_identical_with_telemetry(self, tmp_path):
        fingerprints = {}
        for label, path in (
            ("off", None),
            ("on", str(tmp_path / "ev.jsonl")),
        ):
            result = run_fleet_campaign(
                n_services=4,
                episodes_per_service=2,
                seed=23,
                workers=4,
                events_path=path,
            )
            fingerprints[label] = fingerprint_fleet(result)
        assert fingerprints["off"] == fingerprints["on"]

    def test_transport_counters_are_deterministic_across_workers(self):
        """The deterministic half of the transport block (rounds,
        knowledge counters, watermark lag) must not depend on worker
        count; only the wall-clock timings may differ."""
        deterministic = {}
        for workers in (1, 2):
            transport = run_fleet_campaign(
                n_services=4,
                episodes_per_service=2,
                seed=23,
                workers=workers,
            ).transport
            deterministic[workers] = (
                transport["rounds"],
                transport["knowledge"],
                transport["watermark_lag"],
            )
        assert deterministic[1] == deterministic[2]
