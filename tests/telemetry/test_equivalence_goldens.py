"""Goldens must stay byte-identical with the flight recorder enabled.

The telemetry layer's hard constraint is *observes, never mutates*: a
campaign with recording on must produce exactly the statistics the
golden files pin.  These tests re-run every golden workload — the
single-service campaigns, the `fleet_multi` fleet at worker counts 1
and 2, the recorded-trace scenario, and the whole hard-case corpus —
with an event log attached, and compare against the same goldens the
telemetry-off tests in ``tests/perf/test_golden_stats.py`` use.
"""

from __future__ import annotations

import pytest

from repro.experiments.campaign import run_campaign
from repro.fleet.campaign import run_fleet_campaign
from repro.scenarios.corpus import replay_corpus
from repro.scenarios.runner import build_approach, run_scenario
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService
from repro.telemetry import HealingTelemetry
from tests.perf.test_golden_stats import (
    assert_fleet_matches_golden,
    assert_matches_golden,
    goldens,  # noqa: F401 - module-scoped fixture
)
from tests.scenarios.test_corpus import CORPUS_DIR


class TestGoldensWithTelemetry:
    def test_single_service_goldens_with_telemetry(self, goldens):  # noqa: F811
        for case in goldens["single_service"]:
            service = MultitierService(ServiceConfig(seed=case["seed"]))
            result = run_campaign(
                build_approach(case["approach"]),
                n_episodes=case["n_episodes"],
                seed=case["seed"],
                service=service,
                telemetry=HealingTelemetry(member=0),
            )
            assert result.total_ticks == case["final_tick"]
            assert_matches_golden(result, case["stats"])

    @pytest.mark.parametrize("workers", [1, 2])
    def test_fleet_multi_golden_with_telemetry(self, goldens, workers, tmp_path):  # noqa: F811
        case = goldens["fleet_multi"]
        result = run_fleet_campaign(
            n_services=case["n_services"],
            episodes_per_service=case["episodes_per_service"],
            seed=case["seed"],
            workers=workers,
            events_path=str(tmp_path / "events.jsonl"),
        )
        assert_fleet_matches_golden(result, case["stats"])

    def test_scenario_trace_bytes_with_telemetry(self, goldens, tmp_path):  # noqa: F811
        """The recorded telemetry *trace* (the replay layer's file) must
        hash to the golden digest even while the flight recorder is
        also writing its event log alongside."""
        case = goldens["scenario"]
        run = run_scenario(
            case["name"],
            seed=case["seed"],
            n_episodes=case["n_episodes"],
            record_path=str(tmp_path / "trace.jsonl"),
            events_path=str(tmp_path / "events.jsonl"),
        )
        assert run.trace_sha256 == case["trace_sha256"]
        assert_matches_golden(run.result, case["stats"])


@pytest.mark.skipif(
    not CORPUS_DIR.is_dir(), reason="committed corpus not present"
)
def test_corpus_replays_bit_exactly_with_telemetry(tmp_path):
    checks = replay_corpus(
        str(CORPUS_DIR), check_fleet=False, events_dir=str(tmp_path)
    )
    assert checks, "empty corpus"
    bad = [f"{c.entry.name}: {c.details}" for c in checks if not c.ok]
    assert not bad, "corpus drift with telemetry on:\n" + "\n".join(bad)
    for check in checks:
        assert (tmp_path / f"{check.entry.name}.events.jsonl").is_file()
