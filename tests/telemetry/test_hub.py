"""Unit tests for the event buffer and its JSONL wire format."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.telemetry import EVENTS_SCHEMA, TelemetryHub, dump_events, load_events


class TestTelemetryHub:
    def test_seq_is_per_hub_and_monotonic(self):
        hub = TelemetryHub(source=2)
        first = hub.emit("phase", phase="detection")
        second = hub.emit("audit")
        assert (first["seq"], second["seq"]) == (0, 1)
        other = TelemetryHub(source=3)
        assert other.emit("phase")["seq"] == 0

    def test_source_stamps_member_field(self):
        assert TelemetryHub(source=4).emit("phase")["m"] == 4
        # Coordinator-level hubs stamp no member at all (not m=None),
        # so sorted-key JSONL bytes don't carry a null field.
        assert "m" not in TelemetryHub(source=None).emit("fleet_round")

    def test_numpy_values_coerce_to_json_natives(self):
        hub = TelemetryHub(source=0)
        event = hub.emit(
            "phase",
            start=np.int64(3),
            score=np.float64(0.5),
            vector=np.array([1.0, 2.0]),
            nested={"k": np.int32(7), "seq_list": (np.int64(1),)},
        )
        # The emitted dict must already be JSON-native: json.dumps with
        # no default= hook is exactly what dump_events does.
        text = json.dumps(event, sort_keys=True)
        assert json.loads(text) == {
            "type": "phase",
            "seq": 0,
            "m": 0,
            "start": 3,
            "score": 0.5,
            "vector": [1.0, 2.0],
            "nested": {"k": 7, "seq_list": [1]},
        }
        assert isinstance(event["start"], int)
        assert isinstance(event["score"], float)


class TestDumpLoadRoundTrip:
    def test_round_trip_preserves_header_and_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        hub = TelemetryHub(source=None)
        hub.emit("fleet_round", round=0, lag=np.int64(2))
        member = TelemetryHub(source=1)
        member.emit("episode_start", episode=0)
        sha = dump_events(
            path, {"kind": "fleet", "seed": 3}, [hub.events, member.events]
        )
        header, events = load_events(path)
        assert header["schema"] == EVENTS_SCHEMA
        assert header["kind"] == "fleet"
        assert header["seed"] == 3
        # Stream order is the canonical order the caller passed.
        assert [e["type"] for e in events] == ["fleet_round", "episode_start"]
        assert events[0]["lag"] == 2
        assert events[1]["m"] == 1
        assert len(sha) == 64

    def test_bytes_are_canonical_json_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        hub = TelemetryHub(source=0)
        hub.emit("phase", zeta="z", alpha="a")
        dump_events(path, {"kind": "campaign"}, [hub.events])
        lines = open(path, "r", encoding="utf-8").read().splitlines()
        # Sorted keys, compact separators: emission order of kwargs
        # cannot leak into the bytes.
        assert lines[1] == (
            '{"alpha":"a","m":0,"seq":0,"type":"phase","zeta":"z"}'
        )


class TestLoadEventsErrors:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events(str(tmp_path / "missing.jsonl"))

    def test_empty_file_is_value_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty event log"):
            load_events(str(path))

    def test_non_json_header_is_value_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not an event log"):
            load_events(str(path))

    def test_json_without_header_type_is_value_error(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text('{"type":"phase"}\n')
        with pytest.raises(ValueError, match="no header line"):
            load_events(str(path))

    def test_wrong_schema_family_is_value_error(self, tmp_path):
        path = tmp_path / "schema.jsonl"
        path.write_text('{"type":"header","schema":"other/9"}\n')
        with pytest.raises(ValueError, match="unknown event schema"):
            load_events(str(path))

    def test_bad_event_line_is_value_error_with_line_number(self, tmp_path):
        path = tmp_path / "line.jsonl"
        path.write_text(
            '{"type":"header","schema":"repro-events/1"}\n{oops\n'
        )
        with pytest.raises(ValueError, match=r":2: bad event line"):
            load_events(str(path))

    def test_event_without_type_is_value_error(self, tmp_path):
        path = tmp_path / "typeless.jsonl"
        path.write_text(
            '{"type":"header","schema":"repro-events/1"}\n{"seq":0}\n'
        )
        with pytest.raises(ValueError, match="without a type"):
            load_events(str(path))
