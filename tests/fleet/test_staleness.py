"""Property + integration tests for bounded-staleness exchange.

The staleness executor's correctness rests on three small invariants:
the dispatch ring never rewrites a record the worker hasn't read, the
output ring never rewrites a round the coordinator hasn't stashed, and
windowed absorption conserves entries no matter how the watermarks are
staggered.  Hypothesis pins each invariant in isolation; the
integration tests then check the campaign-level contract — ``K = 0``
reproduces the classic barrier statistics exactly, and ``K > 0`` stays
inside its observed-lag budget.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.campaign import (
    _normalize_staleness,
    format_fleet,
    run_fleet_campaign,
)
from repro.fleet.knowledge import SharedKnowledgeBase
from repro.fleet.transport import (
    UNBOUNDED_RING_SLOTS,
    StalenessControlSegment,
    WorkerOutSegment,
    ring_slots_for,
)
from repro.scenarios.corpus import _canonical_target


class TestRingSizing:
    @given(st.integers(min_value=0, max_value=512))
    def test_finite_budget_gets_k_plus_two_slots(self, budget):
        slots = ring_slots_for(budget)
        assert slots == max(2, budget + 2)
        # K + 1 rounds can be in flight (F .. F + K); one slack slot.
        assert slots >= budget + 1

    def test_unbounded_budget_gets_fixed_depth(self):
        assert ring_slots_for(float("inf")) == UNBOUNDED_RING_SLOTS
        assert UNBOUNDED_RING_SLOTS >= 2


class TestNormalizeStaleness:
    def test_accepted_values(self):
        assert _normalize_staleness(None) is None
        assert _normalize_staleness(0) == 0
        assert _normalize_staleness(3) == 3
        assert _normalize_staleness(3.0) == 3
        assert _normalize_staleness(float("inf")) == float("inf")

    @pytest.mark.parametrize(
        "bad", [-1, -0.5, 1.5, float("nan"), float("-inf"), "two"]
    )
    def test_rejected_values(self, bad):
        with pytest.raises(ValueError):
            _normalize_staleness(bad)


class TestStalenessControlSegment:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=12),
    )
    def test_dispatch_roundtrip_through_attach(
        self, n_slots, n_services, n_rounds
    ):
        """Every dispatch read back (through a second attachment, the
        worker's view) must return exactly the published record, with
        watermarks non-decreasing the way the coordinator issues them."""
        owner = StalenessControlSegment(n_slots, n_services)
        try:
            worker = StalenessControlSegment.attach(
                owner.name, n_slots, n_services
            )
            try:
                last_mark = -1
                for r in range(n_rounds):
                    mark, frontier = 3 * r, max(0, r - 1)
                    targets = np.full(n_services, 1.0 + r)
                    owner.publish_dispatch(r, mark, frontier, targets)
                    got_mark, got_frontier, got_targets = (
                        worker.read_dispatch(r)
                    )
                    assert got_mark == mark
                    assert got_frontier == frontier
                    assert got_targets.tobytes() == targets.tobytes()
                    assert got_mark >= last_mark
                    last_mark = got_mark
            finally:
                worker.close()
        finally:
            owner.close()
            owner.unlink()

    def test_stale_slot_read_is_loud(self):
        control = StalenessControlSegment(2, 1)
        try:
            control.publish_dispatch(0, 0, 0, [1.0])
            # Round 2 reuses slot 0; reading it as round 2 before the
            # coordinator publishes round 2 is a discipline violation.
            with pytest.raises(RuntimeError, match="ring discipline"):
                control.read_dispatch(2)
        finally:
            control.close()
            control.unlink()

    def test_abort_flag_crosses_attachment(self):
        owner = StalenessControlSegment(2, 1)
        try:
            worker = StalenessControlSegment.attach(owner.name, 2, 1)
            try:
                assert not worker.aborted()
                owner.abort()
                assert worker.aborted()
            finally:
                worker.close()
        finally:
            owner.close()
            owner.unlink()


def _write_round(out: WorkerOutSegment, round_index: int) -> None:
    """One synthetic round whose payload is a function of its index."""
    flat = np.full(2, float(round_index), dtype=np.float64)
    lengths = np.asarray([2], dtype=np.int64)
    out.write_round(
        round_index,
        [float(round_index)],
        [round_index],
        [1],
        flat,
        lengths,
        np.asarray([round_index], dtype=np.int64),
        np.asarray([0], dtype=np.int64),
    )


class TestWorkerOutRing:
    def test_fewer_than_two_slots_rejected(self):
        with pytest.raises(ValueError, match=">= 2 slots"):
            WorkerOutSegment(1, 4, 8, n_slots=1)

    def test_overwrite_guard_and_consume_release(self):
        out = WorkerOutSegment(1, 4, 8, n_slots=2)
        try:
            _write_round(out, 0)
            _write_round(out, 1)
            # Round 2 would reuse round 0's slot, still unconsumed.
            with pytest.raises(RuntimeError, match="output ring overwrite"):
                _write_round(out, 2)
            out.mark_consumed(0)
            _write_round(out, 2)
            assert out.rounds_completed == 3
            assert out.consumed == 1
        finally:
            out.close()
            out.unlink()

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.lists(
            st.integers(min_value=0, max_value=4), min_size=1, max_size=16
        ),
    )
    def test_slot_reuse_never_clobbers_unconsumed_rounds(
        self, n_slots, lag_schedule
    ):
        """Writer runs ahead, coordinator consumes with an arbitrary
        (bounded) lag: every round read before being consumed must
        still hold exactly the payload written for it."""
        out = WorkerOutSegment(1, 4, 8, n_slots=n_slots)
        try:
            written = consumed = 0
            for lag in lag_schedule:
                # Write as far ahead as the chosen lag (capped by the
                # ring window) allows.
                target = consumed + min(lag, n_slots - 1)
                while written <= target:
                    _write_round(out, written)
                    written += 1
                # Stash-and-consume the oldest outstanding round.
                if consumed < written:
                    view = out.read_round(consumed)
                    assert view["downtime"][0] == float(consumed)
                    assert view["flat"].tobytes() == np.full(
                        2, float(consumed)
                    ).tobytes()
                    assert int(view["fix_codes"][0]) == consumed
                    out.mark_consumed(consumed)
                    consumed += 1
            while consumed < written:
                view = out.read_round(consumed)
                assert view["downtime"][0] == float(consumed)
                out.mark_consumed(consumed)
                consumed += 1
            # Views alias the shared buffer; drop them before close
            # or the mmap teardown trips over exported pointers.
            del view
        finally:
            out.close()
            out.unlink()


# Per-round foreign contributions: (source, symptom value) pairs.
_round_contribs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    min_size=0,
    max_size=3,
)


class TestUpdatesWindow:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(_round_contribs, min_size=1, max_size=6),
        st.integers(min_value=0, max_value=3),
        st.data(),
    )
    def test_staggered_absorption_conserves_entries(
        self, rounds, reader, data
    ):
        """Absorbing through any non-decreasing watermark schedule must
        yield exactly the entries a single ``updates_for`` sweep yields
        — each published entry absorbed exactly once, in log order."""
        base = SharedKnowledgeBase()
        for contributions in rounds:
            for source, value in contributions:
                base.contribute(
                    source, np.asarray([value]), "restart_component"
                )
        total = base.n_entries
        reference, ref_cursor = base.updates_for(reader, 0)
        assert ref_cursor == total

        # A random staggered schedule, always ending at the full log.
        marks = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=total),
                    min_size=1,
                    max_size=6,
                )
            )
        ) + [total]
        absorbed = []
        cursor = 0
        for mark in marks:
            fresh, cursor = base.updates_window(reader, cursor, mark)
            absorbed.extend(fresh)
            assert cursor == min(mark, total)
        assert [e.seq for e in absorbed] == [e.seq for e in reference]
        assert all(e.source != reader for e in absorbed)

    def test_backwards_watermark_is_loud(self):
        base = SharedKnowledgeBase()
        for _ in range(3):
            base.contribute(0, np.asarray([1.0]), "restart_component")
        _, cursor = base.updates_window(1, 0, 2)
        with pytest.raises(ValueError, match="cannot move backwards"):
            base.updates_window(1, cursor, 1)

    def test_watermark_clamped_to_published(self):
        base = SharedKnowledgeBase()
        base.contribute(0, np.asarray([1.0]), "restart_component")
        fresh, cursor = base.updates_window(1, 0, 99)
        assert len(fresh) == 1 and cursor == 1


def _canonical_fixes(result) -> list[tuple]:
    """Per-episode healing outcomes with process-counter-free targets.

    ``hung-<N>`` transaction ids come from a process-wide counter, so
    two in-process runs of the same seed differ in the raw target
    strings; the corpus canonicalization rule makes them comparable.
    """
    out = []
    for campaign in result.per_service:
        for report in campaign.reports:
            out.append(
                (
                    report.injected_at,
                    report.detected_at,
                    report.recovered_at,
                    report.successful_fix,
                    tuple(
                        (
                            app.kind,
                            _canonical_target(app.target)
                            if app.target
                            else None,
                            ok,
                        )
                        for app, ok in zip(
                            report.applications, report.outcomes
                        )
                    ),
                )
            )
    return out


class TestSerialDelayed:
    def test_k0_matches_classic_barrier_exactly(self):
        classic = run_fleet_campaign(
            n_services=2, episodes_per_service=3, seed=17
        )
        delayed = run_fleet_campaign(
            n_services=2, episodes_per_service=3, seed=17,
            staleness_rounds=0,
        )
        assert _canonical_fixes(classic) == _canonical_fixes(delayed)
        assert classic.knowledge_entries == delayed.knowledge_entries
        assert classic.knowledge_absorbed == delayed.knowledge_absorbed
        ledger = delayed.transport["staleness"]
        assert ledger["mode"] == "serial-delayed"
        assert ledger["rounds"] == 0
        assert ledger["lag_max"] == 0
        assert classic.transport["staleness"] is None
        assert classic.staleness_rounds is None
        assert delayed.staleness_rounds == 0

    def test_finite_budget_lags_by_min_of_round_and_k(self):
        result = run_fleet_campaign(
            n_services=2, episodes_per_service=4, seed=17,
            staleness_rounds=1,
        )
        ledger = result.transport["staleness"]
        lags = ledger["round_lag"]
        assert lags == [min(r, 1) for r in range(len(lags))]
        assert ledger["lag_max"] == 1
        assert "staleness=1" in format_fleet(result)

    def test_unbounded_budget_never_absorbs(self):
        shared = run_fleet_campaign(
            n_services=2, episodes_per_service=3, seed=17
        )
        isolated = run_fleet_campaign(
            n_services=2, episodes_per_service=3, seed=17,
            staleness_rounds=float("inf"),
        )
        assert isolated.knowledge_absorbed == 0
        assert isolated.staleness_rounds == float("inf")
        ledger = isolated.transport["staleness"]
        assert ledger["rounds"] == "inf"
        assert ledger["round_lag"] == list(range(len(ledger["round_lag"])))
        # The log itself still fills: publication is not delayed.
        assert isolated.knowledge_entries == shared.knowledge_entries

    def test_staleness_event_emitted_only_when_lagging(self, tmp_path):
        import json

        lagging = tmp_path / "lag.jsonl"
        run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=17,
            staleness_rounds=2, events_path=str(lagging),
        )
        events = [
            json.loads(line)
            for line in lagging.read_text().splitlines()
        ]
        stale = [e for e in events if e.get("type") == "fleet_staleness"]
        assert len(stale) == 1
        assert stale[0]["rounds"] == 2
        assert stale[0]["lag_max"] >= 1

        exact = tmp_path / "k0.jsonl"
        run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=17,
            staleness_rounds=0, events_path=str(exact),
        )
        k0_events = [
            json.loads(line)
            for line in exact.read_text().splitlines()
        ]
        assert not [
            e for e in k0_events if e.get("type") == "fleet_staleness"
        ]


class TestShardedAsync:
    def test_k0_matches_serial_exactly(self):
        serial = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=23,
            staleness_rounds=0,
        )
        sharded = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=23, workers=2,
            staleness_rounds=0,
        )
        assert _canonical_fixes(serial) == _canonical_fixes(sharded)
        assert serial.knowledge_entries == sharded.knowledge_entries
        assert serial.knowledge_absorbed == sharded.knowledge_absorbed
        ledger = sharded.transport["staleness"]
        assert ledger["mode"] == "sharded-async"
        assert ledger["lag_max"] == 0
        assert ledger["ring_slots"] == ring_slots_for(0)

    def test_positive_budget_stays_within_lag_bound(self):
        result = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=23, workers=2,
            staleness_rounds=2,
        )
        ledger = result.transport["staleness"]
        assert ledger["lag_max"] <= 2
        assert ledger["ring_slots"] == ring_slots_for(2)
        # Same faults were injected and every round ran.
        assert result.total_reports > 0
        for lags in ledger["round_lag"].values():
            assert len(lags) == 2  # episodes_per_service rounds each

    def test_unbounded_budget_completes(self):
        result = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=23, workers=2,
            staleness_rounds=float("inf"),
        )
        ledger = result.transport["staleness"]
        assert ledger["ring_slots"] == UNBOUNDED_RING_SLOTS
        assert result.staleness_rounds == float("inf")
        assert result.total_reports > 0


class TestTrackSlo:
    def test_sharded_multi_service_tracking_rejected(self):
        with pytest.raises(ValueError, match="track_slo"):
            run_fleet_campaign(
                n_services=2, episodes_per_service=1, seed=1,
                workers=2, track_slo=True,
            )

    def test_serial_tracking_grades_post_heal_window(self):
        tracked = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=17,
            track_slo=True,
        )
        assert isinstance(tracked.slo_breaches_after_heal, int)
        assert tracked.slo_breaches_after_heal >= 0
        untracked = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=17,
        )
        assert untracked.slo_breaches_after_heal is None
        # Tracking is observational: the healing outcomes are
        # untouched.
        assert _canonical_fixes(tracked) == _canonical_fixes(untracked)

    def test_member_grading_requires_tracking(self):
        from repro.fleet.member import FleetMember

        member = FleetMember(index=0, seed=5)
        with pytest.raises(RuntimeError, match="track_slo"):
            member.slo_breach_after_heal(10)


class TestCliStaleness:
    def test_fleet_staleness_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "fleet",
                    "--services", "1",
                    "--episodes", "1",
                    "--seed", "2",
                    "--staleness", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "staleness=1" in out

    def test_fleet_staleness_inf_alias(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "fleet",
                    "--services", "1",
                    "--episodes", "1",
                    "--seed", "2",
                    "--staleness", "inf",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "staleness=inf" in out

    def test_bad_staleness_is_input_error(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "fleet",
                    "--services", "1",
                    "--episodes", "1",
                    "--staleness", "nope",
                ]
            )
            == 2
        )
