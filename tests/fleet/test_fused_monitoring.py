"""Differential suite: fused monitoring plane vs per-member stack.

The fused plane (:mod:`repro.fleet.fused_monitoring`) stacks many
members' MetricStore/BaselineModel/FailureDetector state into
shard-wide arrays and must be a pure execution-strategy switch — every
store row, baseline fit, streak counter, and fired event bit-identical
to N independent per-member stacks fed the same snapshots.  Hypothesis
drives the shapes the fleet actually produces: mixed healthy/faulted
histories, members fused mid-campaign (state migration into lanes),
members leaving the lockstep mid-round (lane views keep serving the
scalar path), single-member groups, and heterogeneous fleets that must
fall back rather than fuse.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.fused_monitoring import (
    FusedFleet,
    FusedMonitoringPlane,
    fusion_key,
    is_fusable,
)
from repro.healing.loop import HealingHarness
from repro.monitoring.timeseries import MetricStore
from repro.simulator.service import TickSnapshot


def _harness(
    include_invasive: bool = False,
    baseline_window: int = 12,
    current_window: int = 4,
    violation_ticks: int = 2,
    recovery_ticks: int = 3,
) -> HealingHarness:
    # observe() never touches the service, so monitoring-only
    # differentials don't need a simulator behind the harness.
    return HealingHarness(
        None,
        include_invasive=include_invasive,
        baseline_window=baseline_window,
        current_window=current_window,
        violation_ticks=violation_ticks,
        recovery_ticks=recovery_ticks,
    )


def _snapshot(tick: int, rng: np.random.Generator, violated: bool) -> TickSnapshot:
    """One synthetic tick with enough field variety to exercise rows."""
    return TickSnapshot(
        tick=tick,
        available=True,
        request_counts={},
        total_requests=int(rng.integers(50, 200)),
        errors=int(rng.integers(0, 5)),
        error_rate=float(rng.uniform(0.0, 0.1)),
        latency_ms=float(rng.uniform(20.0, 300.0)),
        timeouts=int(rng.integers(0, 3)),
        web_utilization=float(rng.uniform(0.1, 0.9)),
        app_utilization=float(rng.uniform(0.1, 0.9)),
        app_queue=float(rng.uniform(0.0, 20.0)),
        heap_used_mb=float(rng.uniform(100.0, 900.0)),
        gc_overhead=float(rng.uniform(1.0, 1.5)),
        db_utilization=float(rng.uniform(0.05, 0.95)),
        db_mean_service_ms=float(rng.uniform(0.5, 30.0)),
        lock_wait_ms=float(rng.uniform(0.0, 50.0)),
        plan_regret_ms=float(rng.uniform(0.0, 10.0)),
        index_scans=int(rng.integers(0, 400)),
        full_scans=int(rng.integers(0, 40)),
        db_connections=int(rng.integers(1, 50)),
        network_ms=float(rng.uniform(0.5, 5.0)),
        slo_violated=violated,
    )


def _violations(rng: np.random.Generator, length: int) -> list[bool]:
    """Mixed healthy/faulted runs: alternating stretches of both."""
    flags: list[bool] = []
    violated = False
    while len(flags) < length:
        run = int(rng.integers(2, 9))
        flags.extend([violated] * run)
        violated = not violated
    return flags[:length]


def _state(harness: HealingHarness) -> dict:
    """Everything observable about one member's monitoring stack."""
    store = harness.store
    baseline = harness.baseline
    detector = harness.detector
    n = len(store)
    return {
        "count": n,
        "total": store.total_appended,
        "window": store.window(n).tolist() if n else [],
        "ready": baseline.ready,
        "mean": None if baseline._mean is None else baseline._mean.tolist(),
        "std": None if baseline._std is None else baseline._std.tolist(),
        "in_failure": detector.in_failure,
        "violated_streak": detector._violated_streak,
        "healthy_streak": detector._healthy_streak,
        "events_fired": detector.events_fired,
        "next_event_id": detector._next_event_id,
    }


def _assert_same_event(fused, reference) -> None:
    if reference is None or fused is None:
        assert reference is None and fused is None
        return
    assert fused.event_id == reference.event_id
    assert fused.detected_at == reference.detected_at
    assert np.array_equal(fused.symptoms, reference.symptoms)
    assert fused.feature_names == reference.feature_names
    assert np.array_equal(fused.raw_window, reference.raw_window)
    assert fused.metric_names == reference.metric_names


class TestPlaneDifferential:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_members=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=20, max_value=90),
        warmup=st.integers(min_value=0, max_value=18),
        include_invasive=st.booleans(),
    )
    def test_batched_lockstep_matches_observe(
        self, seed, n_members, length, warmup, include_invasive
    ):
        reference = [
            _harness(include_invasive=include_invasive)
            for _ in range(n_members)
        ]
        fused = [
            _harness(include_invasive=include_invasive)
            for _ in range(n_members)
        ]
        rngs = [
            np.random.default_rng((seed, member))
            for member in range(n_members)
        ]
        patterns = [
            _violations(np.random.default_rng((seed, member, 7)), length)
            for member in range(n_members)
        ]
        ticks = [
            [
                _snapshot(t, rngs[member], patterns[member][t])
                for t in range(length)
            ]
            for member in range(n_members)
        ]
        # Pre-fusion warmup: the plane must migrate per-member state
        # (ring contents, streaks, pending fits) into its lanes.
        for t in range(warmup):
            for member in range(n_members):
                ref_event = reference[member].observe(ticks[member][t])
                fused_event = fused[member].observe(ticks[member][t])
                _assert_same_event(fused_event, ref_event)
        plane = FusedMonitoringPlane(fused)
        lanes = list(range(n_members))
        for t in range(warmup, length):
            ref_events = [
                reference[member].observe(ticks[member][t])
                for member in range(n_members)
            ]
            fused_events = plane.observe_batch(
                lanes, [ticks[member][t] for member in range(n_members)]
            )
            for member in range(n_members):
                _assert_same_event(fused_events[member], ref_events[member])
        for member in range(n_members):
            assert _state(fused[member]) == _state(reference[member])

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_members=st.integers(min_value=2, max_value=5),
        length=st.integers(min_value=40, max_value=90),
        split_at=st.integers(min_value=5, max_value=30),
    )
    def test_member_leaving_lockstep_splits_cleanly(
        self, seed, n_members, length, split_at
    ):
        """Mid-campaign divergence: one member drops out of the batch.

        After ``split_at`` batched ticks the departing member is
        observed through the plain scalar ``observe`` path — its lane
        views must keep every inherited read/write working — while the
        rest of the group continues through ``observe_batch``.
        """
        departing = seed % n_members
        reference = [_harness() for _ in range(n_members)]
        fused = [_harness() for _ in range(n_members)]
        plane = FusedMonitoringPlane(fused)
        rngs = [
            np.random.default_rng((seed, member))
            for member in range(n_members)
        ]
        patterns = [
            _violations(np.random.default_rng((seed, member, 7)), length)
            for member in range(n_members)
        ]
        for t in range(length):
            snaps = [
                _snapshot(t, rngs[member], patterns[member][t])
                for member in range(n_members)
            ]
            ref_events = [
                reference[member].observe(snaps[member])
                for member in range(n_members)
            ]
            if t < split_at:
                fused_events = plane.observe_batch(
                    list(range(n_members)), snaps
                )
            else:
                fused_events = [None] * n_members
                fused_events[departing] = fused[departing].observe(
                    snaps[departing]
                )
                remaining = [
                    member
                    for member in range(n_members)
                    if member != departing
                ]
                for member, event in zip(
                    remaining,
                    plane.observe_batch(
                        remaining, [snaps[member] for member in remaining]
                    ),
                ):
                    fused_events[member] = event
            for member in range(n_members):
                _assert_same_event(fused_events[member], ref_events[member])
        for member in range(n_members):
            assert _state(fused[member]) == _state(reference[member])

    def test_single_member_group(self):
        reference = _harness()
        fused = _harness()
        plane = FusedMonitoringPlane([fused])
        rng = np.random.default_rng(3)
        pattern = _violations(np.random.default_rng(4), 60)
        for t in range(60):
            snap = _snapshot(t, rng, pattern[t])
            _assert_same_event(
                plane.observe_batch([0], [snap])[0], reference.observe(snap)
            )
        assert _state(fused) == _state(reference)

    def test_heterogeneous_harnesses_rejected(self):
        plain = _harness()
        other = _harness(baseline_window=24, current_window=4)
        assert fusion_key(plain) != fusion_key(other)
        with pytest.raises(ValueError):
            FusedMonitoringPlane([plain, other])


class TestFusability:
    def test_stock_harness_is_fusable(self):
        assert is_fusable(_harness())

    def test_subclassed_store_is_not_fusable(self):
        class TracingStore(MetricStore):
            pass

        harness = _harness()
        harness.store = TracingStore(
            harness.collector.names, capacity=4096
        )
        assert not is_fusable(harness)

    def test_tight_fit_margin_is_not_fusable(self):
        # bw - cw below the scalar fit guard: the batched fit could
        # not mirror fit_baseline bit-exactly, so the member must
        # stay on the scalar path.
        harness = _harness(baseline_window=10, current_window=8)
        assert not is_fusable(harness)


class TestHeterogeneousFleet:
    def _members(self, n: int, mutate: bool):
        from repro.fleet.member import FleetMember

        members = [
            FleetMember(index=i, seed=29, columnar=True) for i in range(n)
        ]
        if mutate:
            # One replica runs a non-stock store subclass: it must
            # fall back to the per-member pump, not silently fuse.
            class AuditedStore(MetricStore):
                pass

            harness = members[1].loop.harness
            audited = AuditedStore(harness.collector.names, capacity=4096)
            harness.store = audited
            harness.baseline.store = audited
        return members

    def test_fallback_counters_and_equivalence(self):
        # min_batch=28: the 2-member group's combined template width
        # (2 x 14) reaches the fusion gate, while per-tick *active*
        # widths stay just below it so the engine path is unchanged.
        reference = self._members(3, mutate=True)
        fused_members = self._members(3, mutate=True)
        fleet = FusedFleet(fused_members, min_batch=28)
        assert fleet.counters["fused_members"] == 2
        assert fleet.counters["fallback_members"] == 1
        assert fleet.counters["groups"] == 1

        faults = {i: [] for i in range(3)}
        externals = {i: [] for i in range(3)}
        targets = {i: 1.0 for i in range(3)}
        fused_stats = fleet.run_round(faults, externals, targets)
        for member in reference:
            member.set_lb_factor(1.0)
            member.absorb([])
        reference_stats = {
            member.index: member.run_round([]) for member in reference
        }
        assert set(fused_stats) == {0, 1, 2}
        for i in range(3):
            a, b = fused_stats[i], reference_stats[i]
            assert a.episodes == b.episodes
            assert a.new_reports == b.new_reports
            assert a.downtime_fraction == b.downtime_fraction
            assert len(a.contributions) == len(b.contributions)

    def test_homogeneous_fleet_fully_fuses(self):
        members = self._members(3, mutate=False)
        fleet = FusedFleet(members, min_batch=28)
        assert fleet.counters["fused_members"] == 3
        assert fleet.counters["fallback_members"] == 0
        assert fleet.counters["narrow_members"] == 0

    def test_narrow_group_keeps_classic_pump(self):
        # 3 stock members = 42 combined template classes, below the
        # stock crossover (48): fusable, but nothing to amortize.
        members = self._members(3, mutate=False)
        fleet = FusedFleet(members)
        assert fleet.counters["fused_members"] == 0
        assert fleet.counters["narrow_members"] == 3
        assert fleet.counters["fallback_members"] == 0
        assert fleet.counters["groups"] == 0
