"""Property tests for the shared-memory fleet transport.

The ragged pack↔unpack path is the wire format every symptom vector
crosses on its way between fleet workers and the coordinator; a single
off-by-one in the offset arithmetic would silently corrupt knowledge
exchange (and with it, the bit-exactness contract).  Hypothesis drives
the edge cases the stacking trick has to survive: mixed-length
vectors, zero-length vectors, empty rounds, and special float values
(NaN/inf travel verbatim — comparisons are on raw bytes).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.campaign import _entries_from_log
from repro.fleet.knowledge import SharedKnowledgeBase
from repro.fleet.transport import (
    KnowledgeLogSegment,
    Vocab,
    pack_ragged,
    unpack_ragged,
)

# Mixed-length batches, including zero-length vectors and empty
# batches, with the full float64 value range (nan, inf, subnormals).
_vector = st.lists(
    st.floats(width=64, allow_nan=True, allow_infinity=True),
    min_size=0,
    max_size=7,
).map(lambda xs: np.asarray(xs, dtype=np.float64))
_batch = st.lists(_vector, min_size=0, max_size=6)

_FIX_KINDS = ("fix_a", "fix_b", "fix_c")
_VOCAB = Vocab((*_FIX_KINDS, "healed", "admin"))


def _bits(vectors: list[np.ndarray]) -> list[bytes]:
    return [np.asarray(v, dtype=np.float64).tobytes() for v in vectors]


class TestPackRagged:
    @given(_batch)
    def test_round_trip_is_bit_exact(self, vectors):
        flat, lengths = pack_ragged(vectors)
        assert len(lengths) == len(vectors)
        assert int(lengths.sum()) == len(flat)
        out = unpack_ragged(flat, lengths)
        assert _bits(out) == _bits(vectors)

    def test_empty_round(self):
        flat, lengths = pack_ragged([])
        assert len(flat) == 0 and len(lengths) == 0
        assert unpack_ragged(flat, lengths) == []

    def test_length_mismatch_rejected(self):
        flat, lengths = pack_ragged([np.ones(3), np.ones(2)])
        try:
            unpack_ragged(flat[:-1], lengths)
        except ValueError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("short flat buffer must be rejected")


# One (source, fix-kind index, symptoms) contribution at a time; the
# log test replays them through both the shared-memory segment and the
# host knowledge base and requires identical materialized entries.
_contribution = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=len(_FIX_KINDS) - 1),
    st.sampled_from(("healed", "admin")),
    _vector,
)
_rounds = st.lists(
    st.lists(_contribution, min_size=0, max_size=4),
    min_size=0,
    max_size=4,
)


class TestKnowledgeLogSegment:
    @settings(max_examples=30, deadline=None)
    @given(_rounds, st.integers(min_value=0, max_value=3))
    def test_log_matches_host_base(self, rounds, reader):
        """Appending round batches to the shm log and to the host
        knowledge base must materialize identical foreign entries for
        any reader replica — the worker-vs-serial absorption
        equivalence in miniature, including empty rounds."""
        total = sum(len(r) for r in rounds)
        data_cap = max(
            1, sum(len(v) for r in rounds for (_, _, _, v) in r)
        )
        log = KnowledgeLogSegment(max(total, 1), data_cap)
        base = SharedKnowledgeBase()
        try:
            for contributions in rounds:
                flat, lengths = pack_ragged(
                    [v for (_, _, _, v) in contributions]
                )
                sources = np.asarray(
                    [s for (s, _, _, _) in contributions],
                    dtype=np.int64,
                )
                fix_codes = np.asarray(
                    [
                        _VOCAB.encode(_FIX_KINDS[k])
                        for (_, k, _, _) in contributions
                    ],
                    dtype=np.int64,
                )
                origin_codes = np.asarray(
                    [
                        _VOCAB.encode(origin)
                        for (_, _, origin, _) in contributions
                    ],
                    dtype=np.int64,
                )
                log.append_batch(
                    flat, lengths, sources, fix_codes, origin_codes
                )
                base.contribute_batch(
                    flat,
                    lengths,
                    sources,
                    [_FIX_KINDS[k] for (_, k, _, _) in contributions],
                    [origin for (_, _, origin, _) in contributions],
                )
            assert log.published == base.n_entries == total

            from_log = _entries_from_log(
                log, 0, log.published, reader, _VOCAB
            )
            from_base, cursor = base.updates_for(reader, 0)
            assert cursor == total
            assert len(from_log) == len(from_base)
            for a, b in zip(from_log, from_base):
                assert a.seq == b.seq
                assert a.source == b.source
                assert a.fix_kind == b.fix_kind
                assert a.origin == b.origin
                assert a.symptoms.tobytes() == b.symptoms.tobytes()
        finally:
            log.close()
            log.unlink()

    def test_overflow_is_loud(self):
        log = KnowledgeLogSegment(1, 4)
        try:
            flat, lengths = pack_ragged([np.ones(2), np.ones(2)])
            try:
                log.append_batch(
                    flat,
                    lengths,
                    np.zeros(2, dtype=np.int64),
                    np.zeros(2, dtype=np.int64),
                    np.zeros(2, dtype=np.int64),
                )
            except RuntimeError as exc:
                assert "overflow" in str(exc)
            else:  # pragma: no cover - failure path
                raise AssertionError("overflow must raise")
        finally:
            log.close()
            log.unlink()


class TestSharedKnowledgeBaseBatch:
    @settings(max_examples=30, deadline=None)
    @given(_rounds)
    def test_batch_equals_sequential_contribute(self, rounds):
        """One vectorized batch append must record exactly what the
        per-entry contribute path records (mixed lengths included)."""
        batched = SharedKnowledgeBase()
        sequential = SharedKnowledgeBase()
        for contributions in rounds:
            flat, lengths = pack_ragged(
                [v for (_, _, _, v) in contributions]
            )
            batched.contribute_batch(
                flat,
                lengths,
                np.asarray(
                    [s for (s, _, _, _) in contributions],
                    dtype=np.int64,
                ),
                [_FIX_KINDS[k] for (_, k, _, _) in contributions],
                [origin for (_, _, origin, _) in contributions],
            )
            for source, k, origin, vector in contributions:
                sequential.contribute(
                    source, vector, _FIX_KINDS[k], origin
                )
        assert batched.n_entries == sequential.n_entries
        assert batched.by_source() == sequential.by_source()
        for a, b in zip(batched.entries, sequential.entries):
            assert (a.seq, a.source, a.fix_kind, a.origin) == (
                b.seq,
                b.source,
                b.fix_kind,
                b.origin,
            )
            assert a.symptoms.tobytes() == b.symptoms.tobytes()
