"""Tests for the fleet layer: knowledge, balancing, aggregation."""

import math

import numpy as np
import pytest

from repro.core.synopses.nearest_neighbor import NearestNeighborSynopsis
from repro.experiments.campaign import CampaignResult
from repro.faults.correlated import (
    build_correlated_schedule,
    per_service_queues,
)
from repro.fixes.catalog import ALL_FIX_KINDS
from repro.fleet import (
    FleetLoadBalancer,
    SharedKnowledgeBase,
    aggregate_campaigns,
    run_fleet_campaign,
    weighted_mean,
)
from repro.healing.report import EpisodeReport


def _report(
    attempts: int = 1,
    escalated: bool = False,
    injected_at: int = 100,
    detected_at: int = 104,
    recovered_at: int | None = 140,
) -> EpisodeReport:
    report = EpisodeReport(
        event_id=0,
        fault_kinds=("deadlocked_threads",),
        fault_category="software",
        injected_at=injected_at,
        detected_at=detected_at,
        recovered_at=recovered_at,
        escalated=escalated,
    )
    report.applications = [None] * attempts  # only len() is consumed
    return report


class TestWeightedMean:
    def test_basic_weighting(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_empty_and_nan_shards_dropped(self):
        assert weighted_mean([2.0, float("nan")], [3.0, 5.0]) == 2.0
        assert weighted_mean([2.0, 9.0], [3.0, 0.0]) == 2.0

    def test_nothing_contributes_is_nan(self):
        assert math.isnan(weighted_mean([], []))
        assert math.isnan(weighted_mean([float("nan")], [4.0]))
        assert math.isnan(weighted_mean([1.0], [0.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])


class TestAggregation:
    def test_pooled_equals_weighted_mean_of_shards(self):
        a = CampaignResult(
            reports=[_report(attempts=2), _report(attempts=4)], injected=2
        )
        b = CampaignResult(reports=[_report(attempts=6)], injected=2,
                           undetected=1)
        empty = CampaignResult()
        pooled = aggregate_campaigns([a, b, empty])
        assert pooled.injected == 4
        assert pooled.undetected == 1
        assert len(pooled.reports) == 3
        expected = weighted_mean(
            [r.mean_attempts for r in (a, b, empty)],
            [len(r.reports) for r in (a, b, empty)],
        )
        assert pooled.mean_attempts == pytest.approx(expected)
        assert pooled.mean_attempts == pytest.approx(4.0)

    def test_empty_fleet_statistics_are_nan_safe(self):
        pooled = aggregate_campaigns([CampaignResult(), CampaignResult()])
        assert pooled.mean_attempts == 0.0
        assert math.isnan(pooled.mean_detection_ticks())
        assert math.isnan(pooled.mean_recovery_ticks())


class TestSharedKnowledgeBase:
    def test_cursor_skips_own_and_already_seen(self):
        kb = SharedKnowledgeBase()
        kb.contribute(0, np.zeros(3), ALL_FIX_KINDS[0])
        kb.contribute(1, np.ones(3), ALL_FIX_KINDS[1])
        fresh, cursor = kb.updates_for(0, 0)
        assert [e.source for e in fresh] == [1]
        assert cursor == 2
        # Nothing new since the cursor.
        fresh, cursor = kb.updates_for(0, cursor)
        assert fresh == [] and cursor == 2
        # A later publication is visible to everyone but its source.
        kb.contribute(0, np.zeros(3), ALL_FIX_KINDS[2])
        fresh, _ = kb.updates_for(1, 2)
        assert [e.source for e in fresh] == [0]

    def test_disabled_base_records_nothing(self):
        kb = SharedKnowledgeBase(enabled=False)
        assert kb.contribute(0, np.zeros(3), ALL_FIX_KINDS[0]) is None
        assert kb.n_entries == 0
        assert kb.updates_for(1, 0) == ([], 0)


class TestSynopsisMerge:
    def test_merge_refits_once_and_transfers(self):
        donor = NearestNeighborSynopsis(ALL_FIX_KINDS)
        donor.add_success(np.asarray([1.0, 0.0]), ALL_FIX_KINDS[3])
        donor.add_success(np.asarray([0.0, 1.0]), ALL_FIX_KINDS[5])

        receiver = NearestNeighborSynopsis(ALL_FIX_KINDS)
        fits_before = receiver.fit_count
        merged = receiver.merge_samples(donor.export_samples())
        assert merged == 2
        assert receiver.n_samples == 2
        assert receiver.fit_count == fits_before + 1
        top_kind, _ = receiver.ranked_fixes(np.asarray([0.9, 0.1]))[0]
        assert top_kind == ALL_FIX_KINDS[3]

    def test_merge_rejects_unknown_kind(self):
        synopsis = NearestNeighborSynopsis(ALL_FIX_KINDS)
        with pytest.raises(ValueError):
            synopsis.merge_samples([(np.zeros(2), "not_a_fix")])

    def test_merge_empty_is_noop(self):
        synopsis = NearestNeighborSynopsis(ALL_FIX_KINDS)
        assert synopsis.merge_samples([]) == 0
        assert synopsis.fit_count == 0

    def test_bad_sample_mid_batch_leaves_synopsis_untouched(self):
        synopsis = NearestNeighborSynopsis(ALL_FIX_KINDS)
        synopsis.add_success(np.asarray([1.0, 0.0]), ALL_FIX_KINDS[0])
        with pytest.raises(ValueError):
            synopsis.merge_samples(
                [
                    (np.asarray([0.0, 1.0]), ALL_FIX_KINDS[1]),
                    (np.zeros(2), "not_a_fix"),
                ]
            )
        with pytest.raises(ValueError):
            synopsis.merge_samples(
                [
                    (np.asarray([0.0, 1.0]), ALL_FIX_KINDS[1]),
                    (np.zeros(5), ALL_FIX_KINDS[2]),  # width mismatch
                ]
            )
        assert synopsis.n_samples == 1  # nothing half-merged


class TestLoadBalancer:
    def test_healthy_fleet_keeps_unit_weights(self):
        balancer = FleetLoadBalancer(3)
        assert balancer.rebalance([0.0, 0.1, 0.2]) == [1.0, 1.0, 1.0]

    def test_degraded_replica_spills_to_survivors(self):
        balancer = FleetLoadBalancer(3, spill_fraction=0.6)
        targets = balancer.rebalance([0.9, 0.0, 0.0])
        assert targets[0] == pytest.approx(0.4)
        assert targets[1] == targets[2] == pytest.approx(1.3)
        # Conservation: total traffic share is unchanged.
        assert sum(targets) == pytest.approx(3.0)

    def test_fully_degraded_fleet_has_nowhere_to_spill(self):
        balancer = FleetLoadBalancer(2)
        assert balancer.rebalance([0.9, 0.9]) == [1.0, 1.0]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FleetLoadBalancer(2).rebalance([0.0])


class TestCorrelatedSchedule:
    def test_deterministic_given_seed(self):
        a = build_correlated_schedule(3, 6, seed=11)
        b = build_correlated_schedule(3, 6, seed=11)
        assert [s.pattern for s in a] == [s.pattern for s in b]
        assert [s.kinds for s in a] == [s.kinds for s in b]

    def test_correlated_slots_share_one_kind(self):
        schedule = build_correlated_schedule(
            4, 10, seed=3, p_correlated=1.0, p_cascade=0.0
        )
        for strike in schedule:
            assert strike.pattern == "correlated"
            assert len(set(strike.kinds)) == 1
            assert strike.struck == (0, 1, 2, 3)

    def test_cascade_victim_and_survivor_surges(self):
        schedule = build_correlated_schedule(
            3, 5, seed=3, p_correlated=0.0, p_cascade=1.0
        )
        for strike in schedule:
            assert strike.pattern == "cascade"
            kinds = [fault.kind for fault in strike.faults.values()]
            assert kinds.count("tier_capacity_loss") == 1
            assert kinds.count("load_surge") == 2

    def test_queue_transposition_stays_slot_aligned(self):
        schedule = build_correlated_schedule(2, 4, seed=5)
        queues = per_service_queues(schedule, 2)
        assert len(queues) == 2
        assert all(len(queue) == 4 for queue in queues)
        for slot, strike in enumerate(schedule):
            for i in range(2):
                assert queues[i][slot] is strike.faults.get(i)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            build_correlated_schedule(2, 2, seed=0, p_correlated=0.9,
                                      p_cascade=0.3)
        # Negative probabilities must not slip through the sum check.
        with pytest.raises(ValueError):
            build_correlated_schedule(2, 2, seed=0, p_correlated=0.5,
                                      p_cascade=-0.2)


class TestFleetCampaign:
    def test_same_seed_same_aggregates(self):
        a = run_fleet_campaign(n_services=2, episodes_per_service=2, seed=17)
        b = run_fleet_campaign(n_services=2, episodes_per_service=2, seed=17)
        assert a.total_reports == b.total_reports
        assert a.injected == b.injected
        assert a.undetected == b.undetected
        assert a.mean_attempts == b.mean_attempts
        assert a.escalation_rate == b.escalation_rate
        assert a.knowledge_entries == b.knowledge_entries

    def test_worker_count_does_not_change_results(self):
        serial = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=23, workers=1
        )
        sharded = run_fleet_campaign(
            n_services=2, episodes_per_service=2, seed=23, workers=2
        )
        assert serial.total_reports == sharded.total_reports
        assert serial.mean_attempts == sharded.mean_attempts
        assert serial.escalation_rate == sharded.escalation_rate
        assert serial.mean_detection_ticks() == pytest.approx(
            sharded.mean_detection_ticks()
        )
        assert serial.knowledge_entries == sharded.knowledge_entries
        assert serial.knowledge_absorbed == sharded.knowledge_absorbed

    def test_multi_slot_rounds_match_across_workers(self):
        """episodes_per_round > 1 batches slots between barriers; the
        double-buffered transport must stay equivalent to serial."""
        serial = run_fleet_campaign(
            n_services=3,
            episodes_per_service=4,
            seed=7,
            workers=1,
            episodes_per_round=2,
        )
        sharded = run_fleet_campaign(
            n_services=3,
            episodes_per_service=4,
            seed=7,
            workers=2,
            episodes_per_round=2,
        )
        assert serial.total_reports == sharded.total_reports
        assert serial.mean_attempts == sharded.mean_attempts
        assert serial.mean_detection_ticks() == sharded.mean_detection_ticks()
        assert serial.knowledge_entries == sharded.knowledge_entries
        assert serial.knowledge_absorbed == sharded.knowledge_absorbed

    def test_sharded_sharing_ablation_matches_serial(self):
        serial = run_fleet_campaign(
            n_services=2,
            episodes_per_service=2,
            seed=29,
            workers=1,
            share_knowledge=False,
        )
        sharded = run_fleet_campaign(
            n_services=2,
            episodes_per_service=2,
            seed=29,
            workers=2,
            share_knowledge=False,
        )
        assert sharded.knowledge_entries == 0
        assert sharded.knowledge_absorbed == 0
        assert serial.total_reports == sharded.total_reports
        assert serial.mean_attempts == sharded.mean_attempts

    def test_profile_dir_collects_worker_dumps(self, tmp_path):
        import os

        run_fleet_campaign(
            n_services=2,
            episodes_per_service=1,
            seed=2,
            workers=2,
            profile_dir=str(tmp_path),
        )
        dumps = sorted(os.listdir(tmp_path))
        assert dumps == ["fleet-worker-0.prof", "fleet-worker-1.prof"]
        import pstats

        stats = pstats.Stats(str(tmp_path / dumps[0]))
        stats.add(str(tmp_path / dumps[1]))
        assert stats.total_calls > 0

    def test_sharing_ablation_disables_exchange(self):
        isolated = run_fleet_campaign(
            n_services=2,
            episodes_per_service=1,
            seed=29,
            share_knowledge=False,
        )
        assert isolated.knowledge_entries == 0
        assert isolated.knowledge_absorbed == 0

    def test_zero_episode_fleet_is_nan_safe(self):
        result = run_fleet_campaign(
            n_services=2, episodes_per_service=0, seed=1
        )
        assert result.total_reports == 0
        assert math.isnan(result.escalation_rate)
        assert math.isnan(result.mean_detection_ticks())

    def test_cli_fleet_smoke(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "fleet",
                    "--services",
                    "1",
                    "--episodes",
                    "1",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fleet campaign: 1 services" in out
        assert "knowledge:" in out
