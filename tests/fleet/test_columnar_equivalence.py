"""Differential harness pinning the columnar fleet engine.

``engine="columnar"`` must be a pure execution-strategy switch: every
observable number — campaign statistics, knowledge-log contents,
flight-recorder event bytes — must be bit-identical to the object
reference engine.  These tests enforce that three ways:

* kernel differentials drive twin :class:`DatabaseEngine` instances
  (one scalar, one columnar) through thousands of random ticks,
  healthy and faulted, asserting identical results *and* identical
  engine state after every tick — the interleaving guarantee the
  dispatcher's fallback path depends on;
* Hypothesis sweeps fleet shapes (size, episodes, fault mix, seed,
  sharing) through both engines and compares the full stats payload;
* the committed ``golden_large_fleet.json`` (256 services) replays in
  both engines against its committed per-service payload — the
  at-scale pin that CI's perf-smoke also checks via
  ``benchmarks.perf --check-equivalence --golden``.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database.columnar import MIN_BATCH, install_columnar_engine
from repro.database.engine import DatabaseEngine
from repro.database.locks import HungTransaction
from repro.database.queries import rubis_query_templates
from repro.fleet.campaign import run_fleet_campaign
from repro.fleet.columnar import merge_round_columnar
from repro.fleet.knowledge import SharedKnowledgeBase
from repro.fleet.member import FleetRoundStats
from repro.fleet.transport import Vocab
from repro.scenarios.corpus import fingerprint_fleet, fleet_payload
from repro.simulator.fastdraw import BufferedNormal, verify_buffered_stream

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_large_fleet.json"
)


# ----------------------------------------------------------------------
# Block-buffered RNG draws.
# ----------------------------------------------------------------------


class TestBufferedNormal:
    @pytest.mark.parametrize("block", [1, 3, 64, 256])
    def test_block_fills_match_scalar_draws(self, block):
        # Draw counts straddling block boundaries, including a partial
        # final block (the prefetch-tail check inside the verifier).
        verify_buffered_stream(seed=11, draws=2 * block + 1, block=block)
        verify_buffered_stream(seed=0, draws=500, block=block)

    def test_parameter_mismatch_raises(self):
        buffered = BufferedNormal(np.random.default_rng(0), 1.0, 0.04)
        buffered.normal(1.0, 0.04)
        with pytest.raises(RuntimeError, match="desynchronize"):
            buffered.normal(0.0, 1.0)

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError):
            BufferedNormal(np.random.default_rng(0), 1.0, 0.04, block=0)


# ----------------------------------------------------------------------
# Database kernel differentials.
# ----------------------------------------------------------------------


def _twin_engines(width: int = 13, min_batch: int = 1):
    """A scalar reference engine and a columnar twin, ``width`` classes.

    Widths beyond the stock 13-class RUBiS mix replicate templates
    under fresh names, mirroring the perf harness; ``min_batch=1``
    forces the vector path onto every regular tick so the differential
    exercises it even at stock width.
    """
    base = list(rubis_query_templates().values())
    templates = {}
    i = 0
    while len(templates) < width:
        template = base[i % len(base)]
        name = template.name if i < len(base) else f"c{i}_{template.name}"
        templates[name] = replace(template, name=name)
        i += 1
    reference = DatabaseEngine(templates=dict(templates))
    columnar = DatabaseEngine(templates=dict(templates))
    install_columnar_engine(columnar, min_batch=min_batch)
    return reference, columnar, list(templates)


def _state_signature(engine: DatabaseEngine) -> tuple:
    """Every piece of engine state the tick loop reads or writes."""
    return (
        tuple(
            (name, table.rows, table.partitions, dict(table.skew))
            for name, table in sorted(engine.tables.items())
        ),
        tuple(
            (
                name,
                stats.recorded_rows,
                stats.analyzed_at,
                dict(stats.recorded_skew),
            )
            for name, stats in sorted(
                (n, engine.statistics.statistics_for(n))
                for n in engine.tables
            )
        ),
        engine._last_traffic,
        engine.statistics.analyze_count,
    )


def _random_counts(rng, names, p_unknown=0.1):
    counts = {
        name: int(count)
        for name, count in zip(
            names, rng.integers(0, 40, size=len(names))
        )
    }
    if rng.random() < p_unknown:
        counts["no_such_query_class"] = int(rng.integers(1, 5))
    return counts


class TestColumnarKernel:
    @pytest.mark.parametrize("width", [13, 64])
    def test_healthy_ticks_bit_exact(self, width):
        reference, columnar, names = _twin_engines(width)
        rng = np.random.default_rng(width)
        for tick in range(300):
            counts = _random_counts(rng, names)
            assert reference.process_tick(
                dict(counts), tick
            ) == columnar.process_tick(dict(counts), tick), (
                f"tick {tick} diverged at width {width}"
            )
            assert _state_signature(reference) == _state_signature(
                columnar
            ), f"state diverged after tick {tick}"

    def test_vector_path_actually_runs(self):
        # Guard against the differential silently comparing the scalar
        # loop with itself: count dispatcher fallbacks at a width past
        # the production threshold.
        reference, columnar, names = _twin_engines(max(64, MIN_BATCH + 8))
        accelerator = columnar._columnar
        fallbacks = 0
        original = accelerator._object_tick

        def counting(counts, now):
            nonlocal fallbacks
            fallbacks += 1
            return original(counts, now)

        accelerator._object_tick = counting
        rng = np.random.default_rng(3)
        ticks = 50
        for tick in range(ticks):
            counts = {
                name: int(count)
                for name, count in zip(
                    names, rng.integers(1, 30, size=len(names))
                )
            }
            assert reference.process_tick(
                dict(counts), tick
            ) == columnar.process_tick(dict(counts), tick)
        assert fallbacks == 0, "wide regular ticks must not delegate"

    def test_narrow_mix_delegates(self):
        _, columnar, names = _twin_engines(13, min_batch=MIN_BATCH)
        accelerator = columnar._columnar
        calls = []
        original = accelerator._object_tick
        accelerator._object_tick = lambda c, n: calls.append(n) or original(
            c, n
        )
        columnar.process_tick({names[0]: 5}, 0)
        assert calls == [0], "13-class mixes sit below the crossover"

    def test_faulted_ticks_interleave_bit_exact(self):
        # Random walks through the irregular-state space: skew faults,
        # hung transactions, and the fix entry points that clear them.
        # Every tick must match, whichever path the dispatcher picks,
        # and state must stay converged across path switches.
        reference, columnar, names = _twin_engines(13)
        rng = np.random.default_rng(99)
        hung = 0
        for tick in range(400):
            roll = rng.random()
            if roll < 0.05:
                table = ["items", "bids", "users"][int(rng.integers(3))]
                for engine in (reference, columnar):
                    engine.tables[table].skew["hot_key"] = 25.0
            elif roll < 0.10:
                for engine in (reference, columnar):
                    for table in engine.tables.values():
                        table.skew.clear()
                    engine.update_statistics(tick)
            elif roll < 0.13:
                hung += 1
                for engine in (reference, columnar):
                    engine.locks.register_hung_transaction(
                        HungTransaction(f"t{hung}", "items", tick)
                    )
            elif roll < 0.16:
                for engine in (reference, columnar):
                    engine.kill_hung_query()
            elif roll < 0.18:
                for engine in (reference, columnar):
                    engine.repartition_table("bids")
            counts = _random_counts(rng, names)
            assert reference.process_tick(
                dict(counts), tick
            ) == columnar.process_tick(dict(counts), tick), (
                f"tick {tick} diverged"
            )
            assert _state_signature(reference) == _state_signature(
                columnar
            ), f"state diverged after tick {tick}"

    def test_empty_and_zero_count_ticks(self):
        reference, columnar, names = _twin_engines(13)
        zero = {name: 0 for name in names}
        for tick, counts in enumerate(({}, zero, {"unknown": 3})):
            assert reference.process_tick(
                dict(counts), tick
            ) == columnar.process_tick(dict(counts), tick)


# ----------------------------------------------------------------------
# The stacked knowledge-barrier merge.
# ----------------------------------------------------------------------


def _round_stats(contributions_by_index):
    return {
        index: FleetRoundStats(index=index, contributions=contributions)
        for index, contributions in contributions_by_index.items()
    }


class TestColumnarMerge:
    _VOCAB = Vocab(("fix_a", "fix_b", "healed", "admin"))

    def _entry_tuples(self, knowledge):
        return [
            (
                entry.seq,
                entry.source,
                entry.symptoms.tobytes(),
                entry.fix_kind,
                entry.origin,
            )
            for entry in knowledge.entries
        ]

    def test_stacked_merge_matches_per_entry_contributes(self):
        rng = np.random.default_rng(5)
        contributions = {
            0: [(rng.normal(size=6), "fix_a", "healed")],
            1: [],
            2: [
                (rng.normal(size=6), "fix_b", "admin"),
                (rng.normal(size=6), "fix_a", "healed"),
            ],
        }
        scalar = SharedKnowledgeBase()
        for index in range(3):
            for symptoms, fix_kind, origin in contributions[index]:
                scalar.contribute(index, symptoms, fix_kind, origin)
        columnar = SharedKnowledgeBase()
        merge_round_columnar(
            columnar, _round_stats(contributions), 3, self._VOCAB
        )
        assert self._entry_tuples(scalar) == self._entry_tuples(columnar)

    def test_empty_round_appends_nothing(self):
        knowledge = SharedKnowledgeBase()
        merge_round_columnar(
            knowledge, _round_stats({0: [], 1: []}), 2, self._VOCAB
        )
        assert knowledge.n_entries == 0

    def test_replica_count_mismatch_raises_like_object_path(self):
        # A round reporting fewer replicas than the fleet believes it
        # has is a coordinator bug; both merge paths surface it as the
        # same KeyError on the missing replica index.
        stats = _round_stats({0: []})
        with pytest.raises(KeyError):
            merge_round_columnar(
                SharedKnowledgeBase(), stats, 2, self._VOCAB
            )
        with pytest.raises(KeyError):
            for index in range(2):
                stats[index]


# ----------------------------------------------------------------------
# Fleet-level differentials.
# ----------------------------------------------------------------------


def _run(engine, **kwargs):
    defaults = dict(
        n_services=2, episodes_per_service=1, seed=17, workers=1
    )
    defaults.update(kwargs)
    return run_fleet_campaign(engine=engine, **defaults)


class TestFleetDifferential:
    @settings(max_examples=6, deadline=None)
    @given(
        n_services=st.integers(min_value=1, max_value=4),
        episodes=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=2**16),
        # p_correlated + p_cascade must stay within [0, 1].
        fault_mix=st.sampled_from(
            [(0.0, 0.0), (0.4, 0.15), (0.4, 0.6), (1.0, 0.0), (0.0, 1.0)]
        ),
        share=st.booleans(),
    )
    def test_columnar_matches_object(
        self, n_services, episodes, seed, fault_mix, share
    ):
        p_correlated, p_cascade = fault_mix
        shape = dict(
            n_services=n_services,
            episodes_per_service=episodes,
            seed=seed,
            p_correlated=p_correlated,
            p_cascade=p_cascade,
            share_knowledge=share,
        )
        assert fleet_payload(_run("columnar", **shape)) == fleet_payload(
            _run("object", **shape)
        )

    def test_telemetry_event_bytes_identical(self, tmp_path):
        shape = dict(n_services=3, episodes_per_service=2, seed=23)
        paths = {
            engine: str(tmp_path / f"events_{engine}.jsonl")
            for engine in ("object", "columnar")
        }
        results = {
            engine: _run(engine, events_path=path, **shape)
            for engine, path in paths.items()
        }
        assert (
            results["object"].events_sha256
            == results["columnar"].events_sha256
        )
        assert fleet_payload(results["object"]) == fleet_payload(
            results["columnar"]
        )

    def test_single_service_fleet(self):
        shape = dict(n_services=1, episodes_per_service=2, seed=31)
        assert fleet_payload(_run("columnar", **shape)) == fleet_payload(
            _run("object", **shape)
        )

    def test_all_services_struck_every_slot(self):
        shape = dict(
            n_services=3,
            episodes_per_service=2,
            seed=41,
            p_correlated=1.0,
            p_cascade=0.0,
        )
        assert fleet_payload(_run("columnar", **shape)) == fleet_payload(
            _run("object", **shape)
        )

    def test_empty_knowledge_rounds(self):
        shape = dict(
            n_services=2,
            episodes_per_service=1,
            seed=13,
            share_knowledge=False,
        )
        object_result = _run("object", **shape)
        columnar_result = _run("columnar", **shape)
        assert object_result.knowledge_entries == 0
        assert fleet_payload(columnar_result) == fleet_payload(
            object_result
        )

    def test_fusion_off_ablation_matches(self):
        # fuse=False keeps the columnar engine but the per-member
        # pump — the arm the perf suite times for fused_speedup.
        # 4 stock services so the combined width crosses the fusion
        # gate and the fused arm actually fuses.
        shape = dict(n_services=4, episodes_per_service=2, seed=23)
        fused = _run("columnar", **shape)
        unfused = run_fleet_campaign(
            workers=1, engine="columnar", fuse=False, **shape
        )
        assert fleet_payload(unfused) == fleet_payload(fused)
        assert fused.transport["fused"]["fused_members"] == 4
        assert fused.transport["fused"]["narrow_members"] == 0
        assert unfused.transport["fused"] is None

    def test_invalid_shapes_raise_identically(self):
        errors = {}
        for engine in ("object", "columnar"):
            with pytest.raises(ValueError) as excinfo:
                run_fleet_campaign(n_services=0, engine=engine)
            errors[engine] = str(excinfo.value)
        assert errors["object"] == errors["columnar"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be"):
            run_fleet_campaign(n_services=1, engine="vectorized")


# ----------------------------------------------------------------------
# The committed 256-service golden.
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not os.path.exists(GOLDEN_PATH), reason="large-fleet golden missing"
)
class TestLargeFleetGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.mark.parametrize("engine", ["object", "columnar"])
    def test_replays_bit_exactly(self, golden, engine):
        result = run_fleet_campaign(
            n_services=golden["n_services"],
            episodes_per_service=golden["episodes_per_service"],
            seed=golden["seed"],
            workers=1,
            engine=engine,
        )
        assert fingerprint_fleet(result) == golden["fingerprint"]
        assert fleet_payload(result) == golden["payload"]
