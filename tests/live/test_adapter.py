"""Live adapter: real samples into the unmodified monitoring chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.live.adapter import (
    AdapterConfig,
    LiveMetricAdapter,
    live_metric_specs,
)
from repro.live.supervisor import ServiceSpec, Supervisor, http_json
from repro.monitoring.collectors import MappingCollector


class TestMappingCollector:
    def test_rows_are_registry_ordered(self):
        specs = live_metric_specs()
        collector = MappingCollector(specs)
        assert collector.names == [spec.name for spec in specs]
        sample = {spec.name: float(i) for i, spec in enumerate(specs)}
        row = collector.collect(sample)
        assert row.tolist() == [float(i) for i in range(len(specs))]

    def test_missing_keys_read_zero_and_unknown_keys_ignored(self):
        collector = MappingCollector(live_metric_specs())
        row = collector.collect({"live.up": 1.0, "not.a.metric": 9.0})
        assert row[collector.names.index("live.up")] == 1.0
        assert row.sum() == 1.0

    def test_rows_are_fresh_arrays(self):
        collector = MappingCollector(live_metric_specs())
        a = collector.collect({"live.up": 1.0})
        b = collector.collect({})
        assert a[collector.names.index("live.up")] == 1.0
        assert b[collector.names.index("live.up")] == 0.0


@pytest.fixture(scope="module")
def fleet():
    with Supervisor([ServiceSpec("app", "app")]) as supervisor:
        yield supervisor


@pytest.fixture
def adapter(fleet):
    return LiveMetricAdapter(
        fleet,
        AdapterConfig(
            baseline_window=10,
            current_window=3,
            violation_ticks=2,
            recovery_ticks=2,
        ),
    )


def warm(adapter, name="app", samples=14):
    for _ in range(samples):
        event = adapter.observe(name)
        assert event is None
    assert adapter.baseline_ready(name)


class TestSampling:
    def test_healthy_service_builds_a_baseline(self, adapter):
        warm(adapter)
        chain = adapter.chain("app")
        assert chain.tick == 14
        assert len(chain.store) == 14
        snapshot = adapter.snapshot("app")
        assert snapshot["live.up"] == 1.0
        assert snapshot["live.rss_mb"] > 0
        assert snapshot["live.requests_total"] >= 1

    def test_proc_sampling_reports_rss(self, adapter, fleet):
        warm(adapter)
        sample = adapter.chain("app").last_sample
        # A CPython process is comfortably above 5 MiB resident.
        assert sample.rss_mb > 5.0

    def test_latency_fault_fires_debounced_event(self, adapter, fleet):
        warm(adapter)
        handle = fleet.get("app")
        http_json(
            handle.base_url() + "/control/fault",
            {"extra_latency_ms": 200.0},
            timeout=2.0,
        )
        try:
            events = [adapter.observe("app") for _ in range(4)]
            fired = [event for event in events if event is not None]
            assert len(fired) == 1
            event = fired[0]
            # Debounce: first violated sample alone must not fire.
            assert events[0] is None
            assert event.metric_names == adapter.collector.names
            assert event.zscore("live.latency_ms") > 2.0
        finally:
            http_json(
                handle.base_url() + "/control/clear", {}, timeout=2.0
            )

    def test_dead_process_samples_as_down_without_raising(
        self, adapter, fleet
    ):
        warm(adapter)
        handle = fleet.get("app")
        import os
        import signal

        os.kill(handle.pid, signal.SIGKILL)
        handle.process.wait(timeout=5.0)
        try:
            events = [adapter.observe("app") for _ in range(3)]
            fired = [event for event in events if event is not None]
            assert len(fired) == 1
            sample = adapter.chain("app").last_sample
            assert not sample.up
            assert sample.violated
            assert adapter.snapshot("app")["live.up"] == 0.0
        finally:
            fleet.restart("app")

    def test_detector_rearms_after_recovery(self, adapter, fleet):
        warm(adapter)
        handle = fleet.get("app")
        http_json(
            handle.base_url() + "/control/fault",
            {"error_rate": 1.0},
            timeout=2.0,
        )
        fired = [
            event
            for event in (adapter.observe("app") for _ in range(4))
            if event is not None
        ]
        assert len(fired) == 1
        http_json(handle.base_url() + "/control/clear", {}, timeout=2.0)
        # Drain the error-rate window back under the SLO: the stub's
        # sliding metric window still remembers the failures.
        for _ in range(80):
            http_json(handle.base_url() + "/work", timeout=2.0)
        for _ in range(6):
            adapter.observe("app")
        assert not adapter.chain("app").detector.in_failure
