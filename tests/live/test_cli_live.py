"""``repro live`` CLI contract tests (the PR 5 error contract).

Bad input → clean ``error:`` diagnostic on stderr and exit 2; a run
whose gate fails → the report on stdout and exit 1 (``CommandFailed``);
success → exit 0.  Never a traceback for user mistakes.
"""

from __future__ import annotations

import pytest

from repro.cli import main


class TestLiveBadInput:
    def test_unknown_fault_kind_exits_2(self, capsys):
        assert main(["live", "run", "--fault", "totally_bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "totally_bogus" in err
        assert "known:" in err

    def test_malformed_fault_seconds_exits_2(self, capsys):
        code = main(
            ["live", "run", "--fault", "tier_capacity_loss@db:soon"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a number of seconds" in err

    def test_negative_injection_time_exits_2(self, capsys):
        code = main(
            ["live", "run", "--fault", "tier_capacity_loss@db:-1"]
        )
        assert code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_nonpositive_duration_exits_2(self, capsys):
        assert main(["live", "run", "--duration", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--duration" in err

    def test_nonpositive_services_exits_2(self, capsys):
        assert main(["live", "run", "--services", "0"]) == 2
        assert "--services" in capsys.readouterr().err

    def test_nonpositive_demo_budget_exits_2(self, capsys):
        assert main(["live", "demo", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_missing_report_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such.jsonl")
        assert main(["live", "report", missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no-such.jsonl" in err

    def test_malformed_report_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not an event log\n")
        assert main(["live", "report", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["live"])
        assert excinfo.value.code == 2


class TestLiveGateFailure:
    def test_never_injected_fault_exits_1_with_report(self, capsys):
        # One service, a fault scheduled far past the budget: the run
        # completes but the structural gate fails -> CommandFailed.
        code = main(
            [
                "live", "run",
                "--services", "1",
                "--duration", "1",
                "--fault", "tier_capacity_loss@web:600",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "GATE FAILURES" in captured.out
        assert "never injected" in captured.out
        assert captured.err == ""
