"""Supervisor lifecycle: spawn, recover, and — the hard invariant —
tear down every child on SIGTERM/SIGINT without leaving orphans.

The signal tests run ``python -m repro.live.supervisor`` as a real
subprocess and kill it, because signal teardown can only be trusted
when it crosses a process boundary.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.live.supervisor import ServiceSpec, Supervisor

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def _pid_gone(pid: int, timeout: float = 5.0) -> bool:
    """True once the pid no longer exists (or is a reaped zombie)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:  # pragma: no cover - foreign pid
            return False
        time.sleep(0.05)
    return False


@pytest.fixture
def fleet():
    specs = [ServiceSpec("web", "web"), ServiceSpec("db", "db")]
    with Supervisor(specs) as supervisor:
        yield supervisor


class TestLifecycle:
    def test_children_answer_health_checks(self, fleet):
        assert sorted(fleet.names()) == ["db", "web"]
        for name in fleet.names():
            handle = fleet.get(name)
            assert handle.alive()
            assert fleet.health_check(handle)

    def test_stop_is_idempotent_and_reaps(self):
        supervisor = Supervisor([ServiceSpec("web", "web")]).start()
        pid = supervisor.get("web").pid
        supervisor.stop()
        supervisor.stop()
        assert _pid_gone(pid)
        assert supervisor.names() == []

    def test_restart_gives_fresh_pid_and_port(self, fleet):
        old = fleet.get("db")
        fresh = fleet.restart("db")
        assert fresh.pid != old.pid
        assert fresh.restarts == 1
        assert not old.process.poll() is None
        assert fleet.health_check(fresh)

    def test_restart_recovers_a_sigkilled_child(self, fleet):
        old = fleet.get("db")
        os.kill(old.pid, signal.SIGKILL)
        old.process.wait(timeout=5.0)
        assert fleet.reap() == ["db"]
        fresh = fleet.restart("db")
        assert fresh.alive()
        assert fleet.health_check(fresh)
        assert fleet.reap() == []

    def test_scale_out_adds_replica(self, fleet):
        replica = fleet.scale_out("web")
        assert replica.name == "web-replica1"
        assert fleet.health_check(replica)
        # Replicas are torn down with the fleet (checked by the
        # context-manager exit; grab the pid to assert it below).
        pid = replica.pid
        fleet.stop()
        assert _pid_gone(pid)

    def test_failover_swaps_port_without_losing_the_name(self, fleet):
        old = fleet.get("web")
        standby = fleet.failover("web")
        assert standby.pid != old.pid
        assert standby.port != old.port
        assert fleet.get("web") is standby
        assert fleet.health_check(standby)
        assert _pid_gone(old.pid)

    def test_stop_thaws_frozen_children_first(self):
        supervisor = Supervisor([ServiceSpec("app", "app")]).start()
        handle = supervisor.get("app")
        os.kill(handle.pid, signal.SIGSTOP)
        handle.stopped_signal = True
        started = time.monotonic()
        supervisor.stop()
        # A frozen child would eat the whole SIGTERM grace and force
        # SIGKILL; the SIGCONT-first path exits inside the grace.
        assert _pid_gone(handle.pid)
        assert time.monotonic() - started < 10.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Supervisor([ServiceSpec("a", "web"), ServiceSpec("a", "db")])


class TestSignalTeardown:
    """SIGTERM/SIGINT to the supervisor must kill every child."""

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_tears_down_children(self, signum):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.live.supervisor",
             "--services", "3", "--idle", "60"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = process.stdout.readline()
            info = json.loads(line)
            child_pids = [
                child["pid"] for child in info["children"].values()
            ]
            assert len(child_pids) == 3
            for pid in child_pids:
                os.kill(pid, 0)  # all alive before the signal

            os.kill(process.pid, signum)
            process.wait(timeout=30.0)
            # Conventional fatal-signal exit status, not a traceback.
            assert process.returncode == -signum or (
                process.returncode == 128 + signum
            )
            for pid in child_pids:
                assert _pid_gone(pid), f"child {pid} survived teardown"
        finally:
            if process.poll() is None:  # pragma: no cover - test bug
                process.kill()
            process.wait()
            process.stdout.close()
            process.stderr.close()
