"""End-to-end live healing: kill a real process, demand a verified
recovery with a full audit trail.

This is the PR's acceptance scenario (and the CI ``live-smoke`` job):
three real tiers come up, the db worker is SIGKILLed, the unmodified
monitoring chain detects it from real samples, the policy engine
authorizes a restart, and verification confirms the fleet is healthy
again — all inside a bounded wall-clock budget.
"""

from __future__ import annotations

import pytest

from repro.live.runner import FaultSpec, run_demo, run_live
from repro.telemetry.hub import load_events


@pytest.fixture(scope="module")
def demo(tmp_path_factory):
    events = str(tmp_path_factory.mktemp("live") / "events.jsonl")
    result = run_demo(seed=0, budget_s=45.0, events_path=events)
    return result, events


class TestDemoRecovery:
    def test_gate_passes(self, demo):
        result, _ = demo
        assert result.failures == []
        assert result.ok

    def test_db_restart_is_verified_success(self, demo):
        result, _ = demo
        episodes = [
            episode for episode in result.episodes
            if episode["service"] == "db" and episode["recovered"]
        ]
        assert episodes
        records = episodes[0]["records"]
        wins = [
            record for record in records if record["outcome"] == "success"
        ]
        assert wins
        assert wins[-1]["action"] == "restart_service"
        assert wins[-1]["trigger"] == "liveness"
        # The audit captured the outage and the recovery.
        assert wins[-1]["before_state"].get("live.up") == 0.0
        assert wins[-1]["after_state"].get("live.up") == 1.0

    def test_restarted_worker_is_a_new_process(self, demo):
        result, _ = demo
        assert result.services["db"]["restarts"] >= 1

    def test_engine_ledger_matches_episodes(self, demo):
        result, _ = demo
        report = result.engine_report
        assert report["total_executed"] >= 1
        assert report["by_outcome"].get("success", 0) >= 1

    def test_event_log_renders_with_the_stock_report_stack(self, demo):
        result, events_path = demo
        header, events = load_events(events_path)
        assert header["backend"] == "live"
        kinds = {event["type"] for event in events}
        assert {"episode_start", "phase", "audit", "episode_end"} <= kinds
        audits = [
            event for event in events
            if event["type"] == "audit" and event["success"]
        ]
        assert audits
        assert audits[-1]["action_taken"] == "restart_service"

        from repro.telemetry import format_report

        text = format_report(header, events)
        assert "recovered via restart_service" in text


class TestRunGate:
    def test_unhealed_fault_fails_the_gate(self):
        """A fault scheduled after the budget ends never injects — the
        structural gate must say so instead of reporting success."""
        result = run_live(
            n_services=1,
            duration_s=1.0,
            faults=[FaultSpec("tier_capacity_loss", "web", at_seconds=60.0)],
            stop_when_healed=False,
        )
        assert not result.ok
        assert any("never injected" in failure for failure in result.failures)
