"""The stub worker's HTTP contract, exercised in-process."""

from __future__ import annotations

import threading

import pytest

from repro.live.stub_service import POOL_SIZE, create_server
from repro.live.supervisor import http_json


@pytest.fixture
def worker():
    server, state = create_server("db", "db", base_latency_ms=1.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, state
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestEndpoints:
    def test_health_ok(self, worker):
        base, _ = worker
        status, body = http_json(base + "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["name"] == "db"

    def test_health_fails_when_injected(self, worker):
        base, _ = worker
        http_json(base + "/control/fault", {"fail_health": True})
        status, body = http_json(base + "/health")
        assert status == 503
        http_json(base + "/control/clear", {})
        status, _ = http_json(base + "/health")
        assert status == 200

    def test_work_counts_requests(self, worker):
        base, state = worker
        for _ in range(3):
            status, body = http_json(base + "/work")
            assert status == 200
            assert body["ok"] is True
        _, metrics = http_json(base + "/metrics")
        assert metrics["requests_total"] == 3
        assert metrics["errors_total"] == 0
        assert metrics["work_latency_ms"] > 0

    def test_unknown_path_is_404(self, worker):
        base, _ = worker
        status, _ = http_json(base + "/nope")
        assert status == 404
        status, _ = http_json(base + "/nope", {})
        assert status == 404

    def test_bad_control_payload_is_400(self, worker):
        base, _ = worker
        status, body = http_json(
            base + "/control/fault", {"error_rate": 7.0}
        )
        assert status == 400
        assert "error_rate" in body["error"]


class TestFaultBehaviors:
    def test_injected_error_rate_shows_in_metrics(self, worker):
        base, _ = worker
        http_json(base + "/control/fault", {"error_rate": 0.5})
        statuses = [http_json(base + "/work")[0] for _ in range(10)]
        assert statuses.count(500) == 5
        _, metrics = http_json(base + "/metrics")
        assert metrics["errors_total"] == 5
        assert metrics["work_error_rate"] == pytest.approx(0.5)

    def test_extra_latency_raises_work_latency(self, worker):
        base, _ = worker
        _, before = http_json(base + "/metrics")
        http_json(base + "/control/fault", {"extra_latency_ms": 80.0})
        status, body = http_json(base + "/work")
        assert status == 200
        assert body["latency_ms"] >= 80.0

    def test_leak_grows_cache_and_clear_cache_drops_it(self, worker):
        base, state = worker
        http_json(base + "/control/fault", {"leak_kb_per_request": 64})
        for _ in range(4):
            http_json(base + "/work")
        _, metrics = http_json(base + "/metrics")
        assert metrics["cache_mb"] == pytest.approx(
            4 * 64 / 1024.0
        )
        status, body = http_json(base + "/control/clear_cache", {})
        assert status == 200
        assert body["dropped_bytes"] == 4 * 64 * 1024
        _, metrics = http_json(base + "/metrics")
        assert metrics["cache_mb"] == 0.0
        # clear_cache also stops the leak itself.
        assert state.leak_kb_per_request == 0

    def test_saturation_starves_work_and_clears(self, worker):
        base, state = worker
        http_json(
            base + "/control/fault", {"saturate_workers": POOL_SIZE}
        )
        status, body = http_json(base + "/work", timeout=3.0)
        assert status == 503
        assert "saturated" in body["error"]
        http_json(base + "/control/clear", {})
        status, _ = http_json(base + "/work", timeout=3.0)
        assert status == 200
