"""PolicyEngine edge cases, driven on an injected fake clock.

The engine never touches real time in these tests: ``clock`` is a
counter we advance by hand and ``sleep`` advances it, so cooldown
windows, rate limits, and backoff delays are all exact.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.retry import BackoffPolicy
from repro.live.policy import (
    HealingAction,
    HealingOutcome,
    HealingPolicy,
    HealingTrigger,
    PolicyEngine,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_engine(clock: FakeClock, **kwargs) -> PolicyEngine:
    kwargs.setdefault("seed", 3)
    return PolicyEngine(clock=clock, sleep=clock.sleep, **kwargs)


def succeed() -> str:
    return "acted"


def fail_verify() -> bool:
    return False


class TestCooldownSuppression:
    def test_second_trigger_inside_cooldown_is_suppressed(self, clock):
        engine = make_engine(clock)
        first = engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        assert first.outcome is HealingOutcome.SUCCESS
        again = engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        assert again.outcome is HealingOutcome.SUPPRESSED
        assert "cooldown" in again.details

    def test_cooldown_expires(self, clock):
        engine = make_engine(clock)
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        clock.advance(
            engine.policy_for(HealingAction.RESTART_SERVICE).cooldown_seconds
            + 0.01
        )
        again = engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        assert again.outcome is HealingOutcome.SUCCESS

    def test_cooldown_is_per_service_and_action(self, clock):
        engine = make_engine(clock)
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        other_service = engine.execute(
            "web", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        other_action = engine.execute(
            "db", HealingAction.CLEAR_CACHE, HealingTrigger.ANOMALY,
            succeed, lambda: True,
        )
        assert other_service.outcome is HealingOutcome.SUCCESS
        assert other_action.outcome is HealingOutcome.SUCCESS

    def test_suppressed_attempt_does_not_start_a_cooldown(self, clock):
        engine = make_engine(clock)
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        # Only the first (executed) record stamped the rate window.
        assert len(engine._executed_at) == 1


class TestRetriesAndEscalation:
    def test_attempt_past_max_retries_escalates(self, clock):
        engine = make_engine(
            clock,
            policies={
                HealingAction.RESTART_SERVICE: HealingPolicy(
                    HealingAction.RESTART_SERVICE,
                    max_retries=2,
                    cooldown_seconds=0.0,
                    backoff=BackoffPolicy(0.1, 2.0, 1.0, 0.0),
                )
            },
        )
        outcomes = []
        for attempt in (1, 2, 3):
            record = engine.execute(
                "db", HealingAction.RESTART_SERVICE,
                HealingTrigger.THRESHOLD,
                succeed, fail_verify, attempt=attempt,
            )
            outcomes.append(record.outcome)
        assert outcomes == [
            HealingOutcome.FAILED,
            HealingOutcome.FAILED,
            HealingOutcome.ESCALATED,
        ]
        assert len(engine.escalations) == 1
        assert "max_retries exhausted" in engine.escalations[0].details

    def test_action_exception_records_failed(self, clock):
        engine = make_engine(clock)

        def boom() -> str:
            raise RuntimeError("worker vanished")

        record = engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            boom, lambda: True,
        )
        assert record.outcome is HealingOutcome.FAILED
        assert "worker vanished" in record.details

    def test_global_rate_limit_suppresses(self, clock):
        engine = make_engine(clock, max_actions_per_minute=2)
        for service in ("a", "b"):
            record = engine.execute(
                service, HealingAction.RESTART_SERVICE,
                HealingTrigger.LIVENESS, succeed, lambda: True,
            )
            assert record.outcome is HealingOutcome.SUCCESS
        third = engine.execute(
            "c", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        assert third.outcome is HealingOutcome.SUPPRESSED
        assert "rate limit" in third.details
        clock.advance(61.0)
        fourth = engine.execute(
            "c", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        assert fourth.outcome is HealingOutcome.SUCCESS


class TestBackoffDeterminism:
    def test_schedule_is_reproducible_for_a_seed(self, clock):
        first = make_engine(clock, seed=11).backoff_schedule(
            "db", HealingAction.RESTART_SERVICE
        )
        second = make_engine(clock, seed=11).backoff_schedule(
            "db", HealingAction.RESTART_SERVICE
        )
        assert first == second
        assert len(first) == (
            make_engine(clock).policy_for(
                HealingAction.RESTART_SERVICE
            ).max_retries
            - 1
        )

    def test_schedule_varies_by_seed_and_service(self, clock):
        engine = make_engine(clock, seed=11)
        other_seed = make_engine(clock, seed=12)
        assert engine.backoff_schedule(
            "db", HealingAction.RESTART_SERVICE
        ) != other_seed.backoff_schedule(
            "db", HealingAction.RESTART_SERVICE
        )
        assert engine.backoff_schedule(
            "db", HealingAction.RESTART_SERVICE
        ) != engine.backoff_schedule(
            "web", HealingAction.RESTART_SERVICE
        )

    def test_retry_sleeps_the_scheduled_backoff(self, clock):
        engine = make_engine(
            clock,
            policies={
                HealingAction.RESTART_SERVICE: HealingPolicy(
                    HealingAction.RESTART_SERVICE,
                    max_retries=3,
                    cooldown_seconds=0.0,
                )
            },
        )
        schedule = engine.backoff_schedule(
            "db", HealingAction.RESTART_SERVICE
        )
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.THRESHOLD,
            succeed, fail_verify, attempt=1,
        )
        assert clock.sleeps == []
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.THRESHOLD,
            succeed, fail_verify, attempt=2,
        )
        assert clock.sleeps == [schedule[0]]


class TestConcurrency:
    def test_same_service_triggers_serialize(self):
        """Two threads racing one service: one executes, one sees the
        winner's cooldown and is suppressed."""
        engine = PolicyEngine(seed=0)
        barrier = threading.Barrier(2)
        inflight = []
        overlap = []
        lock = threading.Lock()
        results = []

        def act() -> str:
            with lock:
                inflight.append(1)
                if len(inflight) > 1:
                    overlap.append(True)
            with lock:
                inflight.pop()
            return "acted"

        def trigger() -> None:
            barrier.wait()
            results.append(
                engine.execute(
                    "db", HealingAction.RESTART_SERVICE,
                    HealingTrigger.LIVENESS, act, lambda: True,
                )
            )

        threads = [threading.Thread(target=trigger) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not overlap
        outcomes = sorted(record.outcome.value for record in results)
        assert outcomes == ["success", "suppressed"]

    def test_distinct_services_do_not_block_each_other(self):
        engine = PolicyEngine(seed=0)
        a = engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        b = engine.execute(
            "web", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        assert a.outcome is b.outcome is HealingOutcome.SUCCESS


class TestLedgerAndReport:
    def test_report_counts_and_success_rate(self, clock):
        engine = make_engine(clock)
        engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
        )
        engine.execute(
            "web", HealingAction.CLEAR_CACHE, HealingTrigger.ANOMALY,
            succeed, fail_verify,
        )
        report = engine.report()
        assert report["total_records"] == 2
        assert report["total_executed"] == 2
        assert report["success_rate_pct"] == pytest.approx(50.0)
        assert report["by_action"] == {
            "restart_service": 1, "clear_cache": 1,
        }
        assert report["by_outcome"] == {"success": 1, "failed": 1}

    def test_records_carry_before_and_after_state(self, clock):
        engine = make_engine(clock)
        record = engine.execute(
            "db", HealingAction.RESTART_SERVICE, HealingTrigger.LIVENESS,
            succeed, lambda: True,
            before_state={"live.up": 0.0},
        )
        record.after_state = {"live.up": 1.0}
        payload = record.to_dict()
        assert payload["before_state"] == {"live.up": 0.0}
        assert payload["after_state"] == {"live.up": 1.0}
        assert payload["action"] == "restart_service"
        assert payload["outcome"] == "success"
