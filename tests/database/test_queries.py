"""Tests for query templates and their integrity with the schema."""

import pytest

from repro.database.queries import QueryTemplate, rubis_query_templates
from repro.database.schema import rubis_schema


class TestQueryTemplate:
    def test_write_defaults_one_row(self):
        template = QueryTemplate("q", "items", 0.1, is_write=True)
        assert template.rows_inserted == 1

    def test_read_inserts_nothing(self):
        template = QueryTemplate("q", "items", 0.1)
        assert template.rows_inserted == 0
        assert not template.is_write

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryTemplate("q", "items", 0.0)
        with pytest.raises(ValueError):
            QueryTemplate("q", "items", 1.5)
        with pytest.raises(ValueError):
            QueryTemplate("q", "items", 0.1, rows_inserted=-1)


class TestRubisTemplates:
    def test_tables_exist_in_schema(self):
        schema = rubis_schema()
        for template in rubis_query_templates().values():
            assert template.table in schema, template.name

    def test_predicate_columns_are_indexed_when_claimed(self):
        schema = rubis_schema()
        for template in rubis_query_templates().values():
            if template.indexed and template.column is not None:
                table = schema[template.table]
                assert template.column in table.indexes, (
                    f"{template.name} claims an index on "
                    f"{template.table}.{template.column}"
                )

    def test_read_write_mix_present(self):
        templates = rubis_query_templates().values()
        assert any(t.is_write for t in templates)
        assert any(not t.is_write for t in templates)

    def test_read_selectivities_sane(self):
        schema = rubis_schema()
        for template in rubis_query_templates().values():
            if template.is_write:
                continue  # inserts have no meaningful predicate match
            # A read should match at least one row at the nominal
            # table size (no degenerate zero-row queries).
            expected = schema[template.table].rows * template.selectivity
            assert expected >= 0.5, template.name
