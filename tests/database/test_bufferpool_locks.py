"""Tests for the buffer manager and lock manager."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.database.bufferpool import BufferManager, BufferPool
from repro.database.locks import HungTransaction, LockManager
from repro.database.schema import rubis_schema


class TestBufferPool:
    def test_oversized_pool_hits(self):
        pool = BufferPool("data", pages=1000)
        assert pool.hit_ratio(100.0) == pytest.approx(0.995)

    def test_undersized_pool_misses(self):
        pool = BufferPool("data", pages=100)
        assert pool.hit_ratio(10_000.0) < 0.15

    @given(st.floats(1.0, 1e6), st.floats(1.0, 1e6))
    def test_hit_ratio_monotone_in_demand(self, demand_a, demand_b):
        pool = BufferPool("data", pages=500)
        low, high = sorted([demand_a, demand_b])
        assert pool.hit_ratio(low) >= pool.hit_ratio(high) - 1e-12

    def test_demand_ema_converges(self):
        pool = BufferPool("data", pages=10)
        for _ in range(60):
            pool.observe_demand(100.0)
        assert pool.demand_ema == pytest.approx(100.0, rel=0.01)


class TestBufferManager:
    def test_default_shares(self):
        manager = BufferManager(total_pages=10_000)
        assert manager.pool("data").pages == 7000
        assert manager.pool("index").pages == 2500

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            BufferManager(shares={"data": 0.5, "index": 0.2, "log": 0.2})
        manager = BufferManager()
        with pytest.raises(ValueError):
            manager.set_shares({"data": 0.9, "index": 0.9, "log": -0.8})
        with pytest.raises(ValueError):
            manager.set_shares({"data": 1.0})  # missing pools

    def test_repartition_follows_demand(self):
        manager = BufferManager(total_pages=10_000)
        # Starve data, stuff log — then drive heavy data demand.
        manager.set_shares({"data": 0.05, "index": 0.05, "log": 0.90})
        for _ in range(40):
            manager.hit_ratios({"data": 9_000.0, "index": 500.0, "log": 10.0})
        before = manager.pool("data").pages
        shares = manager.repartition_by_demand()
        assert manager.pool("data").pages > before
        assert shares["data"] > 0.8
        assert manager.repartition_count == 1

    def test_repartition_keeps_floor(self):
        manager = BufferManager(total_pages=10_000)
        for _ in range(20):
            manager.hit_ratios({"data": 100_000.0, "index": 0.0, "log": 0.0})
        shares = manager.repartition_by_demand(floor_share=0.02)
        assert min(shares.values()) >= 0.015  # floor honoured (normalized)

    def test_unknown_pool_rejected(self):
        with pytest.raises(KeyError):
            BufferManager().pool("bogus")


class TestLockContention:
    def test_no_writes_no_waits(self):
        locks = LockManager(rubis_schema())
        assert locks.contention_wait_ms("items", reads=500, writes=0) == 0.0

    def test_wait_grows_with_writes(self):
        locks = LockManager(rubis_schema())
        low = locks.contention_wait_ms("items", reads=100, writes=5)
        high = locks.contention_wait_ms("items", reads=100, writes=50)
        assert high > low > 0.0

    def test_partitioning_divides_contention(self):
        schema = rubis_schema()
        locks = LockManager(schema)
        schema["items"].hot_fraction = 0.002  # contended
        before = locks.contention_wait_ms("items", reads=100, writes=20)
        schema["items"].partitions = 8
        after = locks.contention_wait_ms("items", reads=100, writes=20)
        assert after < before
        # Away from the saturation cap the division is exact.
        if before < LockManager.HOLD_MS:
            assert after == pytest.approx(before / 8, rel=1e-6)

    def test_wait_capped_at_hold_time(self):
        schema = rubis_schema()
        schema["items"].hot_fraction = 1e-4
        locks = LockManager(schema)
        wait = locks.contention_wait_ms("items", reads=1e5, writes=1e4)
        assert wait == pytest.approx(LockManager.HOLD_MS)


class TestHungTransactions:
    def test_blocking_accumulates_waiters(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("T1", "items", 0))
        wait = locks.block_waiters(now=1)
        assert wait > 0
        assert locks.wait_for.number_of_nodes() > 1

    def test_two_hung_on_same_table_deadlock(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("T1", "items", 0))
        locks.register_hung_transaction(HungTransaction("T2", "items", 1))
        locks.block_waiters(now=2)
        deadlocks = locks.detect_deadlocks()
        assert any({"T1", "T2"} <= set(cycle) for cycle in deadlocks)

    def test_different_tables_no_deadlock(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("T1", "items", 0))
        locks.register_hung_transaction(HungTransaction("T2", "bids", 1))
        locks.block_waiters(now=2)
        assert locks.detect_deadlocks() == []

    def test_kill_releases_waiters(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("T1", "items", 0))
        locks.block_waiters(now=1)
        assert locks.kill_transaction("T1")
        assert locks.wait_for.number_of_nodes() == 0
        assert not locks.kill_transaction("T1")  # already gone

    def test_kill_longest_running_picks_oldest(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("new", "items", 10))
        locks.register_hung_transaction(HungTransaction("old", "bids", 2))
        assert locks.kill_longest_running() == "old"

    def test_duplicate_registration_rejected(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("T1", "items", 0))
        with pytest.raises(ValueError):
            locks.register_hung_transaction(HungTransaction("T1", "items", 1))

    def test_clear_releases_everything(self):
        locks = LockManager(rubis_schema())
        locks.register_hung_transaction(HungTransaction("T1", "items", 0))
        locks.block_waiters(now=1)
        locks.clear()
        assert locks.hung_transactions == []
        assert locks.wait_for.number_of_nodes() == 0
