"""Tests for the cost-based optimizer and plan-quality signals."""

import pytest

from repro.database.optimizer import Optimizer, PlanKind
from repro.database.queries import rubis_query_templates
from repro.database.schema import rubis_schema
from repro.database.statistics import StatisticsCatalog


@pytest.fixture
def setup():
    schema = rubis_schema()
    catalog = StatisticsCatalog(schema)
    optimizer = Optimizer(catalog)
    templates = rubis_query_templates()
    return schema, catalog, optimizer, templates


class TestPlanChoice:
    def test_selective_query_uses_index(self, setup):
        schema, _, optimizer, templates = setup
        choice = optimizer.optimize(
            templates["select_bids_by_item"], schema["bids"], 0.01, 0.01
        )
        assert choice.plan is PlanKind.INDEX_SCAN
        assert choice.regret_ms == pytest.approx(0.0)
        assert choice.misestimation == pytest.approx(1.0)

    def test_unselective_query_scans(self, setup):
        schema, _, optimizer, templates = setup
        # A fifth of the small items table: scanning beats per-row probes.
        choice = optimizer.optimize(
            templates["select_items_by_category"], schema["items"], 0.3, 0.3
        )
        assert choice.plan is PlanKind.FULL_SCAN

    def test_phantom_skew_flips_to_full_scan_with_regret(self, setup):
        """Example 5: Xest >> Xact drives a suboptimal plan."""
        schema, catalog, optimizer, templates = setup
        catalog.statistics_for("bids").recorded_skew["item_id"] = 800.0
        choice = optimizer.optimize(
            templates["select_bids_by_item"], schema["bids"], 0.01, 0.01
        )
        assert choice.plan is PlanKind.FULL_SCAN
        assert choice.est_rows > 100 * choice.act_rows
        assert choice.regret_ms > 10.0
        assert choice.act_cost_ms > choice.optimal_cost_ms

    def test_real_skew_with_fresh_stats_is_planned_correctly(self, setup):
        schema, catalog, optimizer, templates = setup
        schema["bids"].set_skew("item_id", 800.0)
        catalog.analyze("bids", now=1)
        choice = optimizer.optimize(
            templates["select_bids_by_item"], schema["bids"], 0.01, 0.01
        )
        # The optimizer knows about the hot item and picks the true
        # optimum, whatever it is: no regret.
        assert choice.regret_ms == pytest.approx(0.0, abs=1e-6)
        assert choice.misestimation == pytest.approx(1.0)

    def test_misses_raise_costs(self, setup):
        schema, _, optimizer, templates = setup
        template = templates["select_bids_by_item"]
        cheap = optimizer.optimize(template, schema["bids"], 0.0, 0.0)
        expensive = optimizer.optimize(template, schema["bids"], 0.9, 0.9)
        assert expensive.act_cost_ms > cheap.act_cost_ms

    def test_non_indexed_template_never_index_scans(self, setup):
        schema, catalog, optimizer, _ = setup
        from repro.database.queries import QueryTemplate

        template = QueryTemplate(
            "adhoc", "items", 0.001, "item_id", indexed=False
        )
        choice = optimizer.optimize(template, schema["items"], 0.01, 0.01)
        assert choice.plan is PlanKind.FULL_SCAN

    def test_misestimation_handles_zero_estimate(self, setup):
        from repro.database.optimizer import PlanChoice

        choice = PlanChoice("q", PlanKind.FULL_SCAN, 0.0, 5.0, 1.0, 1.0, 1.0)
        assert choice.misestimation == float("inf")
        choice = PlanChoice("q", PlanKind.FULL_SCAN, 0.0, 0.0, 1.0, 1.0, 1.0)
        assert choice.misestimation == 1.0
