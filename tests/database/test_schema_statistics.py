"""Tests for tables, indexes, and optimizer statistics."""

import pytest

from repro.database.schema import Index, Table, rubis_schema
from repro.database.statistics import StatisticsCatalog


class TestTable:
    def test_pages_computed_from_width(self):
        table = Table("t", rows=1000, row_bytes=8192)
        assert table.pages == 1000
        wide = Table("w", rows=10, row_bytes=100)
        assert wide.pages == 1  # 81 rows fit one page

    def test_grow_and_shrink(self):
        table = Table("t", rows=100, row_bytes=100)
        table.grow(50)
        assert table.rows == 150
        table.grow(-200)
        assert table.rows == 0

    def test_skew_shifts_actual_selectivity(self):
        table = Table("t", rows=1000, row_bytes=100)
        assert table.actual_selectivity(0.01, "col") == pytest.approx(0.01)
        table.set_skew("col", 10.0)
        assert table.actual_selectivity(0.01, "col") == pytest.approx(0.1)
        assert table.actual_selectivity(0.5, "col") == 1.0  # capped

    def test_clear_skew(self):
        table = Table("t", rows=10, row_bytes=10)
        table.set_skew("a", 2.0)
        table.set_skew("b", 3.0)
        table.clear_skew("a")
        assert "a" not in table.skew and "b" in table.skew
        table.clear_skew()
        assert not table.skew

    def test_validation(self):
        with pytest.raises(ValueError):
            Table("t", rows=-1, row_bytes=10)
        with pytest.raises(ValueError):
            Table("t", rows=1, row_bytes=0)
        with pytest.raises(ValueError):
            Table("t", rows=1, row_bytes=1, hot_fraction=0.0)
        with pytest.raises(ValueError):
            Table("t", rows=1, row_bytes=1).set_skew("c", 0.0)
        with pytest.raises(ValueError):
            Index("i", "c", selectivity=0.0)

    def test_duplicate_index_rejected(self):
        table = Table("t", rows=10, row_bytes=10)
        table.add_index(Index("i1", "c", 0.1))
        with pytest.raises(ValueError):
            table.add_index(Index("i2", "c", 0.2))


class TestRubisSchema:
    def test_contains_auction_tables(self):
        schema = rubis_schema()
        for name in ("users", "items", "bids", "comments", "buy_now"):
            assert name in schema
        assert schema["bids"].rows > schema["items"].rows

    def test_indexes_present(self):
        schema = rubis_schema()
        assert "item_id" in schema["bids"].indexes
        assert "category_id" in schema["items"].indexes


class TestStatisticsCatalog:
    def test_fresh_statistics_have_unit_staleness(self):
        catalog = StatisticsCatalog(rubis_schema())
        assert catalog.staleness("bids") == pytest.approx(1.0)
        assert catalog.max_staleness() == pytest.approx(1.0)

    def test_growth_raises_staleness_until_analyze(self):
        schema = rubis_schema()
        catalog = StatisticsCatalog(schema)
        schema["items"].grow(schema["items"].rows)  # double it
        assert catalog.staleness("items") == pytest.approx(2.0)
        catalog.analyze("items", now=5)
        assert catalog.staleness("items") == pytest.approx(1.0)
        assert catalog.statistics_for("items").analyzed_at == 5

    def test_analyze_captures_skew(self):
        schema = rubis_schema()
        catalog = StatisticsCatalog(schema)
        schema["bids"].set_skew("item_id", 40.0)
        stats = catalog.statistics_for("bids")
        assert stats.estimated_skew("item_id") == 1.0  # not yet seen
        catalog.analyze("bids", now=1)
        assert stats.estimated_skew("item_id") == pytest.approx(40.0)

    def test_auto_analyze_triggers_on_row_growth(self):
        schema = rubis_schema()
        catalog = StatisticsCatalog(schema, auto_analyze_threshold=1.3)
        schema["items"].grow(int(schema["items"].rows * 0.5))
        refreshed = catalog.run_auto_analyze(now=2)
        assert "items" in refreshed

    def test_auto_analyze_blind_to_skew_drift(self):
        """The realistic gap that lets stale-stats failures persist."""
        schema = rubis_schema()
        catalog = StatisticsCatalog(schema)
        stats = catalog.statistics_for("bids")
        stats.recorded_skew["item_id"] = 800.0  # phantom skew
        assert catalog.run_auto_analyze(now=3) == []
        assert stats.estimated_skew("item_id") == 800.0

    def test_auto_analyze_disabled(self):
        schema = rubis_schema()
        catalog = StatisticsCatalog(schema)
        catalog.auto_analyze_enabled = False
        schema["items"].grow(schema["items"].rows * 5)
        assert catalog.run_auto_analyze(now=1) == []

    def test_unknown_table_rejected(self):
        catalog = StatisticsCatalog(rubis_schema())
        with pytest.raises(KeyError):
            catalog.statistics_for("nope")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            StatisticsCatalog(rubis_schema(), auto_analyze_threshold=1.0)
