"""Tests for the database execution engine."""

import pytest

from repro.database.engine import DatabaseEngine
from repro.database.locks import HungTransaction


@pytest.fixture
def engine():
    return DatabaseEngine()


@pytest.fixture
def mix():
    return {
        "select_item_by_id": 300,
        "select_items_by_category": 40,
        "select_bids_by_item": 200,
        "insert_bid": 60,
        "select_user_by_id": 150,
        "update_item_price": 20,
    }


class TestTickProcessing:
    def test_baseline_is_fast_and_clean(self, engine, mix):
        result = engine.process_tick(mix, now=1)
        assert result.mean_service_ms < 2.0
        assert result.est_act_ratio_max == pytest.approx(1.0)
        assert result.deadlocks == 0
        assert result.timeouts == 0
        assert result.total_queries == sum(mix.values())

    def test_empty_mix(self, engine):
        result = engine.process_tick({}, now=1)
        assert result.total_queries == 0
        assert result.mean_service_ms == 0.0

    def test_unknown_queries_ignored(self, engine):
        result = engine.process_tick({"bogus_query": 50}, now=1)
        assert result.total_queries == 0

    def test_writes_grow_tables(self, engine, mix):
        rows_before = engine.tables["bids"].rows
        result = engine.process_tick(mix, now=1)
        assert engine.tables["bids"].rows == rows_before + 60
        assert result.rows_grown >= 60

    def test_phantom_skew_produces_divergence_and_regret(self, engine, mix):
        engine.statistics.statistics_for("bids").recorded_skew[
            "item_id"
        ] = 800.0
        result = engine.process_tick(mix, now=1)
        assert result.est_act_ratio_max > 100.0
        assert result.plan_regret_ms > 0.0
        assert result.full_scans >= 200  # bids queries flipped

    def test_update_statistics_restores_plans(self, engine, mix):
        engine.statistics.statistics_for("bids").recorded_skew[
            "item_id"
        ] = 800.0
        degraded = engine.process_tick(mix, now=1)
        engine.update_statistics(now=2)
        healed = engine.process_tick(mix, now=3)
        assert healed.mean_service_ms < degraded.mean_service_ms / 5
        assert healed.est_act_ratio_max == pytest.approx(1.0)

    def test_hung_transaction_times_out_statements(self, engine, mix):
        engine.locks.register_hung_transaction(
            HungTransaction("T1", "items", started_at=0)
        )
        result = engine.process_tick(mix, now=1)
        assert result.timeouts > 0
        assert result.lock_wait_ms > 500.0
        engine.kill_hung_query()
        clean = engine.process_tick(mix, now=2)
        assert clean.timeouts == 0


class TestFixEntryPoints:
    def test_repartition_table_multiplies_partitions(self, engine):
        assert engine.repartition_table("items", factor=4) == 4
        assert engine.tables["items"].partitions == 4
        with pytest.raises(ValueError):
            engine.repartition_table("items", factor=1)

    def test_most_contended_table_uses_traffic(self, engine, mix):
        engine.tables["items"].hot_fraction = 0.0005
        engine.process_tick(mix, now=1)
        assert engine.most_contended_table() == "items"

    def test_most_contended_without_traffic_falls_back(self, engine):
        name = engine.most_contended_table()
        assert name in engine.tables

    def test_repartition_memory_rebalances(self, engine):
        engine.buffers.set_shares({"data": 0.05, "index": 0.05, "log": 0.90})
        heavy = {"select_bids_by_item": 400, "select_item_by_id": 300}
        for now in range(6):
            engine.process_tick(heavy, now=now)
        shares = engine.repartition_memory()
        assert shares["data"] > 0.5

    def test_restart_clears_locks_and_degradation(self, engine):
        engine.locks.register_hung_transaction(
            HungTransaction("T1", "items", started_at=0)
        )
        engine.service_time_multiplier = 9.0
        engine.restart(now=1)
        assert engine.locks.hung_transactions == []
        assert engine.service_time_multiplier == 1.0
        assert engine.restart_count == 1

    def test_kill_hung_query_with_nothing_hung(self, engine):
        assert engine.kill_hung_query() is None
