"""Tests for distance functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.learning.distance import euclidean, manhattan, pairwise_euclidean

_vec = arrays(np.float64, 5, elements=st.floats(-1e4, 1e4, allow_nan=False))


def test_euclidean_known_value():
    assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)


def test_manhattan_known_value():
    assert manhattan([1, 2], [4, -2]) == pytest.approx(7.0)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        euclidean([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        manhattan([1], [1, 2])
    with pytest.raises(ValueError):
        pairwise_euclidean(np.zeros((2, 3)), np.zeros((2, 4)))


def test_pairwise_matches_pointwise(rng):
    points = rng.normal(size=(6, 4))
    queries = rng.normal(size=(3, 4))
    matrix = pairwise_euclidean(points, queries)
    assert matrix.shape == (3, 6)
    for i in range(3):
        for j in range(6):
            assert matrix[i, j] == pytest.approx(
                euclidean(queries[i], points[j]), abs=1e-9
            )


@given(_vec, _vec)
def test_euclidean_symmetry(a, b):
    assert euclidean(a, b) == pytest.approx(euclidean(b, a), rel=1e-9)


@given(_vec)
def test_euclidean_identity(a):
    assert euclidean(a, a) == 0.0


@given(_vec, _vec, _vec)
def test_triangle_inequality(a, b, c):
    assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


def test_pairwise_no_negative_from_rounding(rng):
    # Near-identical points can push the quadratic form negative.
    point = rng.normal(size=(1, 8)) * 1e8
    matrix = pairwise_euclidean(point, point + 1e-9)
    assert matrix[0, 0] >= 0.0
