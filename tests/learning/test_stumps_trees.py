"""Tests for decision stumps and shallow trees (boosting weak learners)."""

import numpy as np
import pytest

from repro.learning.stumps import DecisionStump, best_gini_split
from repro.learning.tree import DecisionTree


def _onehot(labels, weights, classes):
    out = np.zeros((len(labels), len(classes)))
    index = {c: j for j, c in enumerate(classes)}
    for i, (label, w) in enumerate(zip(labels, weights)):
        out[i, index[label]] = w
    return out


class TestGiniSplit:
    def test_finds_perfect_split(self):
        features = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        onehot = _onehot(labels, np.ones(4), np.array([0, 1]))
        impurity, feature, threshold = best_gini_split(features, onehot)
        assert feature == 0
        assert 1.0 < threshold < 10.0
        assert impurity == pytest.approx(0.0)

    def test_ignores_constant_features(self):
        features = np.column_stack(
            [np.full(4, 7.0), np.array([0.0, 1.0, 10.0, 11.0])]
        )
        labels = np.array([0, 0, 1, 1])
        onehot = _onehot(labels, np.ones(4), np.array([0, 1]))
        _, feature, _ = best_gini_split(features, onehot)
        assert feature == 1

    def test_all_constant_returns_none(self):
        onehot = _onehot(np.array([0, 1]), np.ones(2), np.array([0, 1]))
        _, feature, _ = best_gini_split(np.ones((2, 3)), onehot)
        assert feature is None

    def test_weights_shift_the_split(self):
        # Three points of class 1 at x=5 get tiny weight: the split
        # should favor separating the heavy points.
        features = np.array([[0.0], [1.0], [5.0], [5.1], [5.2], [10.0]])
        labels = np.array([0, 0, 1, 1, 1, 1])
        heavy = np.array([10.0, 10.0, 0.01, 0.01, 0.01, 10.0])
        onehot = _onehot(labels, heavy, np.array([0, 1]))
        _, _, threshold = best_gini_split(features, onehot)
        assert 1.0 < threshold < 10.0


class TestDecisionStump:
    def test_predicts_majority_per_side(self):
        features = np.array([[0.0], [0.5], [9.0], [9.5]])
        labels = np.array(["left", "left", "right", "right"])
        stump = DecisionStump().fit(
            features, labels, np.ones(4), np.unique(labels)
        )
        pred = stump.predict(np.array([[0.1], [9.9]]))
        assert list(pred) == ["left", "right"]

    def test_constant_data_predicts_majority(self):
        stump = DecisionStump().fit(
            np.ones((3, 2)),
            np.array([1, 1, 0]),
            np.ones(3),
            np.array([0, 1]),
        )
        assert list(stump.predict(np.zeros((2, 2)))) == [1, 1]

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            DecisionStump().fit(
                np.empty((0, 2)), np.empty(0), np.empty(0), np.array([0])
            )

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionStump().predict(np.zeros((1, 1)))


class TestDecisionTree:
    def test_depth_one_equals_stump_behaviour(self):
        features = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        tree = DecisionTree(max_depth=1).fit(
            features, labels, np.ones(4), np.array([0, 1])
        )
        assert list(tree.predict(features)) == [0, 0, 1, 1]

    def test_conjunction_needs_depth_two(self, rng):
        # "lock waits high AND timeouts present" style conjunctions are
        # the failure-signature structure depth-2 trees exist for; a
        # single split cannot express them.
        features = rng.uniform(-1, 1, size=(400, 2))
        labels = ((features[:, 0] > 0) & (features[:, 1] > 0)).astype(int)
        classes = np.array([0, 1])
        shallow = DecisionTree(max_depth=1).fit(
            features, labels, np.ones(400), classes
        )
        deep = DecisionTree(max_depth=2).fit(
            features, labels, np.ones(400), classes
        )
        acc_shallow = np.mean(shallow.predict(features) == labels)
        acc_deep = np.mean(deep.predict(features) == labels)
        assert acc_deep > 0.95
        assert acc_deep > acc_shallow

    def test_proba_rows_sum_to_one(self, blob_data):
        features, labels = blob_data
        tree = DecisionTree(max_depth=3).fit(
            features, labels, np.ones(len(labels)), np.unique(labels)
        )
        proba = tree.predict_proba(features[:20])
        assert proba.shape == (20, len(np.unique(labels)))
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba > 0)  # Laplace smoothing keeps support

    def test_pure_node_stops_splitting(self):
        tree = DecisionTree(max_depth=5).fit(
            np.arange(4.0).reshape(4, 1),
            np.zeros(4, dtype=int),
            np.ones(4),
            np.array([0]),
        )
        assert tree._root.feature is None  # root stayed a leaf

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTree(leaf_smoothing=0.0)
