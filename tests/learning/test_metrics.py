"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.learning.metrics import accuracy, confusion_matrix, macro_f1


def test_accuracy_basic():
    assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(
        2 / 3
    )


def test_accuracy_rejects_empty():
    with pytest.raises(ValueError):
        accuracy(np.array([]), np.array([]))


def test_accuracy_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        accuracy(np.array([1, 2]), np.array([1]))


def test_confusion_matrix_counts():
    y_true = np.array(["a", "a", "b", "b"])
    y_pred = np.array(["a", "b", "b", "b"])
    matrix, labels = confusion_matrix(y_true, y_pred)
    assert list(labels) == ["a", "b"]
    assert matrix[0, 0] == 1  # a -> a
    assert matrix[0, 1] == 1  # a -> b
    assert matrix[1, 1] == 2  # b -> b
    assert matrix.sum() == 4


def test_confusion_matrix_with_explicit_labels():
    matrix, labels = confusion_matrix(
        np.array([0]), np.array([0]), labels=np.array([0, 1, 2])
    )
    assert matrix.shape == (3, 3)
    assert matrix[0, 0] == 1


def test_macro_f1_perfect():
    y = np.array([0, 1, 2, 0])
    assert macro_f1(y, y) == pytest.approx(1.0)


def test_macro_f1_one_class_wrong():
    y_true = np.array([0, 0, 1, 1])
    y_pred = np.array([0, 0, 0, 0])
    # class 0: precision 0.5, recall 1 -> f1 = 2/3; class 1: f1 = 0.
    assert macro_f1(y_true, y_pred) == pytest.approx((2 / 3) / 2)
