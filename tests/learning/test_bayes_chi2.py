"""Tests for naive Bayes, the TAN Bayesian network, and chi-squared tests."""

import numpy as np
import pytest
from scipy import stats

from repro.learning.bayesnet import DiscreteBayesNet, discretize
from repro.learning.chi2 import chi2_goodness_of_fit, chi2_independence, chi2_sf
from repro.learning.naive_bayes import GaussianNaiveBayes


class TestGaussianNaiveBayes:
    def test_learns_separable_blobs(self, blob_data):
        features, labels = blob_data
        model = GaussianNaiveBayes().fit(features[:300], labels[:300])
        acc = np.mean(model.predict(features[300:]) == labels[300:])
        assert acc > 0.9

    def test_posterior_normalized(self, blob_data):
        features, labels = blob_data
        model = GaussianNaiveBayes().fit(features, labels)
        proba = model.predict_proba(features[:5])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_singleton_class_has_finite_likelihood(self):
        features = np.array([[0.0, 0.0], [5.0, 5.0], [5.1, 4.9]])
        labels = np.array([0, 1, 1])
        model = GaussianNaiveBayes().fit(features, labels)
        scores = model.log_likelihood(np.array([[0.0, 0.0]]))
        assert np.all(np.isfinite(scores))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.empty((0, 2)), np.empty(0))


class TestDiscretize:
    def test_bins_cover_range(self, rng):
        features = rng.normal(size=(200, 3))
        binned, edges = discretize(features, n_bins=5)
        assert binned.min() >= 0
        assert binned.max() <= 4
        assert len(edges) == 3

    def test_reuse_edges_on_new_data(self, rng):
        train = rng.normal(size=(100, 2))
        _, edges = discretize(train, n_bins=4)
        binned, _ = discretize(np.array([[100.0, -100.0]]), edges=edges)
        assert binned[0, 0] == binned.max()  # beyond top edge -> last bin
        assert binned[0, 1] == 0

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            discretize(np.zeros((5, 1)), n_bins=1)


class TestDiscreteBayesNet:
    def test_learns_separable_blobs(self, blob_data):
        features, labels = blob_data
        model = DiscreteBayesNet(n_bins=6).fit(features[:300], labels[:300])
        acc = np.mean(model.predict(features[300:]) == labels[300:])
        assert acc > 0.8

    def test_tree_structure_is_a_tree(self, blob_data):
        features, labels = blob_data
        model = DiscreteBayesNet().fit(features, labels)
        parents = model.parents_
        assert parents.count(None) == 1  # exactly one root
        # No feature is its own ancestor (acyclic by construction).
        for j, parent in enumerate(parents):
            seen = set()
            while parent is not None:
                assert parent not in seen
                seen.add(parent)
                parent = parents[parent]

    def test_attribute_relevance_finds_informative(self, rng):
        informative = rng.normal(size=400)
        labels = (informative > 0).astype(int)
        noise = rng.normal(size=(400, 3))
        features = np.column_stack([noise[:, 0], informative, noise[:, 1:]])
        relevance = DiscreteBayesNet().attribute_relevance(features, labels)
        assert int(np.argmax(relevance)) == 1

    def test_posterior_normalized(self, blob_data):
        features, labels = blob_data
        model = DiscreteBayesNet().fit(features, labels)
        proba = model.predict_proba(features[:4])
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestChi2:
    def test_sf_matches_scipy(self):
        for statistic, dof in [(1.0, 1), (5.0, 3), (20.0, 8)]:
            assert chi2_sf(statistic, dof) == pytest.approx(
                stats.chi2.sf(statistic, dof), rel=1e-10
            )

    def test_sf_input_validation(self):
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)
        with pytest.raises(ValueError):
            chi2_sf(-1.0, 2)

    def test_goodness_of_fit_matches_scipy(self):
        observed = np.array([18.0, 30.0, 52.0])
        expected_props = np.array([0.2, 0.3, 0.5])
        statistic, p = chi2_goodness_of_fit(observed, expected_props)
        ref = stats.chisquare(observed, expected_props * observed.sum())
        assert statistic == pytest.approx(ref.statistic)
        assert p == pytest.approx(ref.pvalue)

    def test_goodness_of_fit_detects_shift(self):
        baseline = np.array([0.5, 0.5])
        _, p_same = chi2_goodness_of_fit(np.array([50.0, 50.0]), baseline)
        _, p_diff = chi2_goodness_of_fit(np.array([90.0, 10.0]), baseline)
        assert p_same > 0.9
        assert p_diff < 1e-6

    def test_goodness_of_fit_degenerate_cases(self):
        assert chi2_goodness_of_fit(np.zeros(3), np.ones(3)) == (0.0, 1.0)
        assert chi2_goodness_of_fit(np.ones(3), np.zeros(3)) == (0.0, 1.0)

    def test_independence_matches_scipy(self):
        table = np.array([[30.0, 10.0], [12.0, 28.0]])
        statistic, p = chi2_independence(table)
        ref = stats.chi2_contingency(table, correction=False)
        assert statistic == pytest.approx(ref.statistic)
        assert p == pytest.approx(ref.pvalue)

    def test_independence_degenerate(self):
        assert chi2_independence(np.array([[5.0, 5.0]])) == (0.0, 1.0)
        with pytest.raises(ValueError):
            chi2_independence(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            chi2_independence(np.array([[-1.0, 2.0], [1.0, 2.0]]))
