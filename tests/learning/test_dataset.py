"""Tests for dataset containers and preprocessing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.learning.dataset import (
    Dataset,
    MinMaxScaler,
    Standardizer,
    train_test_split,
)


class TestDataset:
    def test_basic_construction(self):
        ds = Dataset(np.zeros((3, 2)), np.array([0, 1, 0]))
        assert ds.n_samples == 3
        assert ds.n_features == 2
        assert list(ds.classes) == [0, 1]

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(np.zeros(3), np.array([0, 1, 0]))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            Dataset(np.zeros((3, 2)), np.array([0, 1]))

    def test_rejects_name_mismatch(self):
        with pytest.raises(ValueError, match="feature names"):
            Dataset(np.zeros((3, 2)), np.zeros(3), feature_names=["a"])

    def test_subset_preserves_names(self):
        ds = Dataset(np.eye(3), np.array([0, 1, 2]), ["a", "b", "c"])
        sub = ds.subset(np.array([2, 0]))
        assert sub.n_samples == 2
        assert sub.feature_names == ["a", "b", "c"]
        assert list(sub.labels) == [2, 0]

    def test_append_returns_new_dataset(self):
        ds = Dataset(np.zeros((1, 2)), np.array([5]))
        grown = ds.append(np.ones(2), 7)
        assert ds.n_samples == 1  # original untouched
        assert grown.n_samples == 2
        assert grown.labels[-1] == 7

    def test_append_rejects_wrong_width(self):
        ds = Dataset(np.zeros((1, 2)), np.array([5]))
        with pytest.raises(ValueError, match="features"):
            ds.append(np.ones(3), 7)

    def test_empty_factory(self):
        ds = Dataset.empty(4)
        assert ds.n_samples == 0
        assert ds.n_features == 4
        grown = ds.append(np.arange(4), 1)
        assert grown.n_samples == 1


class TestStandardizer:
    def test_zero_mean_unit_std(self, rng):
        features = rng.normal(3.0, 2.0, size=(200, 4))
        scaled = Standardizer().fit_transform(features)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passthrough(self):
        features = np.column_stack([np.arange(5.0), np.full(5, 2.0)])
        scaled = Standardizer().fit_transform(features)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 1], 0.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((1, 2)))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.empty((0, 3)))


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        features = rng.uniform(-10, 10, size=(50, 3))
        scaled = MinMaxScaler().fit_transform(features)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_constant_feature_maps_to_zero(self):
        features = np.column_stack([np.arange(5.0), np.full(5, 3.0)])
        scaled = MinMaxScaler().fit_transform(features)
        assert np.allclose(scaled[:, 1], 0.0)

    def test_out_of_range_query_extrapolates(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)

    @given(
        arrays(
            np.float64,
            (10, 3),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_transform_is_monotone(self, features):
        scaler = MinMaxScaler().fit(features)
        scaled = scaler.transform(features)
        for j in range(features.shape[1]):
            order = np.argsort(features[:, j], kind="stable")
            # Sorting by the original column must leave the scaled
            # column non-decreasing (up to floating rounding).
            assert np.all(np.diff(scaled[order, j]) >= -1e-9)


class TestTrainTestSplit:
    def test_partition_is_exact(self, rng):
        ds = Dataset(rng.normal(size=(40, 3)), rng.integers(0, 2, 40))
        train, test = train_test_split(ds, 0.25, rng)
        assert train.n_samples + test.n_samples == 40
        assert test.n_samples == 10

    def test_bad_fraction_rejected(self, rng):
        ds = Dataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            train_test_split(ds, 1.5, rng)

    def test_deterministic_given_seed(self):
        ds = Dataset(np.arange(20.0).reshape(10, 2), np.arange(10))
        a1, b1 = train_test_split(ds, 0.3, np.random.default_rng(5))
        a2, b2 = train_test_split(ds, 0.3, np.random.default_rng(5))
        assert np.array_equal(a1.features, a2.features)
        assert np.array_equal(b1.labels, b2.labels)
