"""Tests for k-means, per-class centroids, and k-NN."""

import numpy as np
import pytest

from repro.learning.distance import pairwise_euclidean
from repro.learning.kmeans import KMeans, PerClassCentroids
from repro.learning.knn import KNeighborsClassifier


class TestKMeans:
    def test_recovers_obvious_clusters(self, rng):
        centers = np.array([[0.0, 0.0], [20.0, 20.0], [-20.0, 20.0]])
        points = np.vstack(
            [center + rng.normal(0, 0.5, (30, 2)) for center in centers]
        )
        model = KMeans(3, rng).fit(points)
        recovered = model.centroids_[
            np.argsort(model.centroids_[:, 0], kind="stable")
        ]
        expected = centers[np.argsort(centers[:, 0], kind="stable")]
        assert np.allclose(recovered, expected, atol=1.0)

    def test_inertia_decreases_with_k(self, rng):
        points = rng.normal(size=(100, 3))
        inertia_2 = KMeans(2, np.random.default_rng(1)).fit(points).inertia_
        inertia_8 = KMeans(8, np.random.default_rng(1)).fit(points).inertia_
        assert inertia_8 < inertia_2

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            KMeans(5, rng).fit(np.zeros((3, 2)))

    def test_deterministic_given_rng_seed(self, rng):
        points = rng.normal(size=(60, 2))
        a = KMeans(4, np.random.default_rng(9)).fit(points)
        b = KMeans(4, np.random.default_rng(9)).fit(points)
        assert np.allclose(a.centroids_, b.centroids_)

    def test_predict_assigns_nearest(self, rng):
        points = rng.normal(size=(30, 2))
        model = KMeans(3, rng).fit(points)
        assignment = model.predict(points)
        distances = pairwise_euclidean(model.centroids_, points)
        assert np.array_equal(assignment, np.argmin(distances, axis=1))

    def test_duplicate_points_handled(self, rng):
        points = np.zeros((10, 2))
        model = KMeans(2, rng).fit(points)
        assert model.fitted  # empty-cluster reseeding must not loop


class TestPerClassCentroids:
    def test_centroids_are_class_means(self):
        features = np.array([[0.0], [2.0], [10.0], [12.0]])
        labels = np.array(["x", "x", "y", "y"])
        model = PerClassCentroids().fit(features, labels)
        by_class = dict(zip(model.classes_, model.centroids_[:, 0]))
        assert by_class["x"] == pytest.approx(1.0)
        assert by_class["y"] == pytest.approx(11.0)

    def test_multimodal_class_fails_where_knn_succeeds(self, rng):
        """The Figure 4 plateau mechanism, in miniature.

        Class "fixA" has two far-apart modes; their mean sits in
        between, right on top of class "fixB" — nearest-centroid must
        misclassify fixB points that 1-NN gets right.
        """
        mode1 = rng.normal([-10, 0], 0.3, (30, 2))
        mode2 = rng.normal([+10, 0], 0.3, (30, 2))
        mid = rng.normal([0, 0], 0.3, (30, 2))
        features = np.vstack([mode1, mode2, mid])
        labels = np.array(["fixA"] * 60 + ["fixB"] * 30)

        centroid = PerClassCentroids().fit(features, labels)
        knn = KNeighborsClassifier(1).fit(features, labels)
        test = rng.normal([0, 0], 0.3, (20, 2))  # fixB territory
        centroid_acc = np.mean(centroid.predict(test) == "fixB")
        knn_acc = np.mean(knn.predict(test) == "fixB")
        assert knn_acc == 1.0
        assert centroid_acc < 0.5

    def test_proba_sums_to_one(self, blob_data):
        features, labels = blob_data
        model = PerClassCentroids().fit(features, labels)
        proba = model.predict_proba(features[:7])
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestKNN:
    def test_k1_matches_paper_rule(self):
        """k=1: the fix of the single closest observed point."""
        features = np.array([[0.0], [10.0]])
        labels = np.array(["near", "far"])
        model = KNeighborsClassifier(1).fit(features, labels)
        assert model.predict(np.array([[1.0]]))[0] == "near"
        assert model.predict(np.array([[9.0]]))[0] == "far"

    def test_majority_vote_k3(self):
        features = np.array([[0.0], [0.1], [0.2], [5.0]])
        labels = np.array(["a", "a", "b", "b"])
        model = KNeighborsClassifier(3).fit(features, labels)
        assert model.predict(np.array([[0.05]]))[0] == "a"

    def test_tie_breaks_to_closest(self):
        features = np.array([[0.0], [1.0]])
        labels = np.array(["a", "b"])
        model = KNeighborsClassifier(2).fit(features, labels)
        assert model.predict(np.array([[0.2]]))[0] == "a"

    def test_partial_fit_appends(self):
        model = KNeighborsClassifier(1)
        model.partial_fit(np.array([0.0]), "a")
        model.partial_fit(np.array([10.0]), "b")
        assert model.n_samples == 2
        assert model.predict(np.array([[9.0]]))[0] == "b"

    def test_proba_shares(self):
        features = np.array([[0.0], [0.1], [0.2]])
        labels = np.array(["a", "a", "b"])
        model = KNeighborsClassifier(3).fit(features, labels)
        proba, classes = model.predict_proba(np.array([[0.0]]))
        by_class = dict(zip(classes, proba[0]))
        assert by_class["a"] == pytest.approx(2 / 3)
        assert by_class["b"] == pytest.approx(1 / 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(1).fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RuntimeError):
            KNeighborsClassifier(1).predict(np.zeros((1, 2)))
