"""Tests for attribute ranking and online-learning support."""

import numpy as np
import pytest

from repro.learning.feature_selection import (
    correlation_ranking,
    mutual_information,
    top_k_features,
)
from repro.learning.online import DriftDetector, RetrainScheduler


class TestCorrelationRanking:
    def test_informative_column_ranks_first(self, rng):
        indicator = rng.normal(size=300)
        features = np.column_stack(
            [
                rng.normal(size=300),
                indicator * 2.0 + rng.normal(0, 0.1, 300),
                rng.normal(size=300),
            ]
        )
        scores = correlation_ranking(features, indicator)
        assert int(np.argmax(scores)) == 1
        assert scores[1] > 0.9

    def test_constant_column_scores_zero(self, rng):
        features = np.column_stack([np.ones(50), rng.normal(size=50)])
        scores = correlation_ranking(features, rng.normal(size=50))
        assert scores[0] == 0.0

    def test_anticorrelation_counts(self, rng):
        indicator = rng.normal(size=200)
        features = (-indicator).reshape(-1, 1)
        assert correlation_ranking(features, indicator)[0] == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            correlation_ranking(np.zeros((3, 2)), np.zeros(4))


class TestMutualInformation:
    def test_nonlinear_dependence_detected(self, rng):
        x = rng.normal(size=2000)
        indicator = (np.abs(x) > 1).astype(int)  # zero linear correlation
        mi = mutual_information(x, indicator)
        noise_mi = mutual_information(rng.normal(size=2000), indicator)
        assert mi > 5 * max(noise_mi, 1e-6)

    def test_empty_series(self):
        assert mutual_information(np.array([]), np.array([])) == 0.0


class TestTopK:
    def test_returns_sorted_by_strength(self, rng):
        indicator = rng.normal(size=400)
        features = np.column_stack(
            [
                rng.normal(size=400),
                indicator + rng.normal(0, 0.5, 400),
                indicator + rng.normal(0, 0.05, 400),
            ]
        )
        top = top_k_features(features, indicator, 2)
        assert list(top) == [2, 1]

    def test_mutual_information_method(self, rng):
        x = rng.normal(size=500)
        indicator = (np.abs(x) > 1).astype(float)
        features = np.column_stack([rng.normal(size=500), x])
        top = top_k_features(
            features, indicator, 1, method="mutual_information"
        )
        assert top[0] == 1

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            top_k_features(np.zeros((5, 2)), np.zeros(5), 1, method="magic")
        with pytest.raises(ValueError):
            top_k_features(np.zeros((5, 2)), np.zeros(5), 0)


class TestRetrainScheduler:
    def test_every_one_retrains_each_sample(self):
        scheduler = RetrainScheduler(every=1)
        assert [scheduler.observe() for _ in range(3)] == [True, True, True]

    def test_every_three_amortizes(self):
        scheduler = RetrainScheduler(every=3)
        assert [scheduler.observe() for _ in range(6)] == [
            False, False, True, False, False, True,
        ]

    def test_min_samples_gate(self):
        scheduler = RetrainScheduler(every=1, min_samples=3)
        assert [scheduler.observe() for _ in range(4)] == [
            False, False, True, True,
        ]

    def test_force_resets_counter(self):
        scheduler = RetrainScheduler(every=2)
        scheduler.observe()
        scheduler.force()
        assert scheduler.observe() is False

    def test_validation(self):
        with pytest.raises(ValueError):
            RetrainScheduler(every=0)
        with pytest.raises(ValueError):
            RetrainScheduler(min_samples=0)


class TestDriftDetector:
    def test_no_drift_on_steady_accuracy(self):
        detector = DriftDetector(window=10, tolerance=0.3)
        assert not any(detector.observe(True) for _ in range(50))

    def test_detects_accuracy_collapse(self):
        detector = DriftDetector(window=10, tolerance=0.3)
        for _ in range(20):
            detector.observe(True)
        fired = [detector.observe(False) for _ in range(10)]
        assert any(fired)

    def test_reset_clears_state(self):
        detector = DriftDetector(window=5, tolerance=0.2)
        for _ in range(10):
            detector.observe(True)
        detector.reset()
        assert detector.windowed_accuracy == 1.0
        assert not detector.observe(False)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(window=1)
        with pytest.raises(ValueError):
            DriftDetector(tolerance=0.0)
