"""Tests for the AdaBoost ensemble (SAMME.R and discrete SAMME)."""

import numpy as np
import pytest

from repro.learning.adaboost import AdaBoostClassifier
from repro.learning.metrics import accuracy


class TestSammeR:
    def test_learns_separable_blobs(self, blob_data):
        features, labels = blob_data
        model = AdaBoostClassifier(n_estimators=30).fit(
            features[:300], labels[:300]
        )
        acc = accuracy(labels[300:], model.predict(features[300:]))
        assert acc > 0.9

    def test_beats_single_tree_on_hard_data(self, rng):
        # A noisy multiclass problem where one depth-3 tree underfits.
        n, k = 400, 6
        centers = rng.normal(0, 3, size=(k, 8))
        labels = rng.integers(0, k, n)
        features = centers[labels] + rng.normal(0, 1.6, (n, 8))
        train, test = slice(0, 300), slice(300, n)
        single = AdaBoostClassifier(n_estimators=1).fit(
            features[train], labels[train]
        )
        ensemble = AdaBoostClassifier(n_estimators=40).fit(
            features[train], labels[train]
        )
        acc_single = accuracy(labels[test], single.predict(features[test]))
        acc_ensemble = accuracy(labels[test], ensemble.predict(features[test]))
        assert acc_ensemble >= acc_single

    def test_single_class_degenerates_gracefully(self):
        model = AdaBoostClassifier().fit(np.random.rand(5, 3), np.ones(5))
        assert list(model.predict(np.random.rand(2, 3))) == [1.0, 1.0]

    def test_proba_normalized(self, blob_data):
        features, labels = blob_data
        model = AdaBoostClassifier(n_estimators=10).fit(
            features[:100], labels[:100]
        )
        proba = model.predict_proba(features[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_deterministic(self, blob_data):
        features, labels = blob_data
        a = AdaBoostClassifier(n_estimators=10).fit(features, labels)
        b = AdaBoostClassifier(n_estimators=10).fit(features, labels)
        assert np.array_equal(a.predict(features), b.predict(features))


class TestSammeDiscrete:
    def test_learns_separable_blobs(self, blob_data):
        features, labels = blob_data
        model = AdaBoostClassifier(n_estimators=30, algorithm="samme").fit(
            features[:300], labels[:300]
        )
        acc = accuracy(labels[300:], model.predict(features[300:]))
        assert acc > 0.85

    def test_tree_weights_populated(self, blob_data):
        features, labels = blob_data
        model = AdaBoostClassifier(n_estimators=5, algorithm="samme").fit(
            features, labels
        )
        assert len(model.tree_weights_) == len(model.trees_)
        assert all(w > 0 for w in model.tree_weights_)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(max_depth=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(algorithm="bogus")

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoostClassifier().predict(np.zeros((1, 2)))
