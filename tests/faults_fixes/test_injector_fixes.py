"""Tests for the injector lifecycle and live fix application."""

import pytest

from repro.faults.app_faults import DeadlockedThreadsFault
from repro.faults.db_faults import StaleStatisticsFault
from repro.faults.infra_faults import LoadSurgeFault, TierCapacityLossFault
from repro.faults.injector import FaultInjector
from repro.fixes.base import FixApplication
from repro.fixes.catalog import build_fix


class TestInjectorLifecycle:
    def test_inject_activates(self, warm_service):
        injector = FaultInjector(warm_service)
        fault = DeadlockedThreadsFault("ItemBean")
        injector.inject(fault, now=10)
        assert fault.active
        assert fault.injected_at == 10
        assert injector.any_active
        assert "ItemBean" in warm_service.app.container.deadlocked

    def test_apply_fix_clears_matching_faults(self, warm_service):
        injector = FaultInjector(warm_service)
        fault = DeadlockedThreadsFault("ItemBean")
        injector.inject(fault, now=1)
        application = FixApplication(
            "microreboot_ejb", "ItemBean", 1, "reboot"
        )
        repaired = injector.apply_fix(application, now=5)
        assert repaired == [fault]
        assert not fault.active
        assert not injector.any_active
        record = injector.history[0]
        assert record.cleared_at == 5
        assert record.cleared_by == "microreboot_ejb"

    def test_apply_fix_ignores_non_matching(self, warm_service):
        injector = FaultInjector(warm_service)
        injector.inject(StaleStatisticsFault(), now=1)
        application = FixApplication("kill_hung_query", None, 1, "kill")
        assert injector.apply_fix(application, now=2) == []
        assert injector.any_active

    def test_self_clearing_fault_retires_on_tick(self, warm_service):
        injector = FaultInjector(warm_service)
        fault = LoadSurgeFault(factor=3.0, duration_ticks=5)
        injector.inject(fault, now=warm_service.tick)
        for _ in range(8):
            warm_service.step()
            cleared = injector.on_tick(warm_service.tick)
        assert not injector.any_active
        assert warm_service.workload.rate_multiplier == pytest.approx(1.0)

    def test_clear_all_is_oracle(self, warm_service):
        injector = FaultInjector(warm_service)
        injector.inject(DeadlockedThreadsFault("BidBean"), now=1)
        injector.inject(StaleStatisticsFault(), now=2)
        cleared = injector.clear_all(now=3, cleared_by="administrator")
        assert len(cleared) == 2
        assert all(
            r.cleared_by == "administrator" for r in injector.history
        )


class TestFixApplications:
    def test_microreboot_with_pinned_target(self, warm_service):
        warm_service.app.container.set_deadlocked("SearchBean")
        application = build_fix("microreboot_ejb", "SearchBean").apply(
            warm_service
        )
        assert application.target == "SearchBean"
        assert "SearchBean" not in warm_service.app.container.deadlocked

    def test_provision_targets_hottest_tier_from_snapshot(self, warm_service):
        injector = FaultInjector(warm_service)
        injector.inject(TierCapacityLossFault("db"), now=warm_service.tick)
        warm_service.run(5)
        application = build_fix("provision_tier").apply(warm_service)
        assert application.target == "db"

    def test_kill_hung_query_without_hung_query(self, warm_service):
        application = build_fix("kill_hung_query").apply(warm_service)
        assert "no hung query" in application.detail

    def test_update_statistics_detail(self, warm_service):
        application = build_fix("update_statistics").apply(warm_service)
        assert "statistics" in application.detail

    def test_repartition_memory_reports_shares(self, warm_service):
        application = build_fix("repartition_memory").apply(warm_service)
        assert "data=" in application.detail

    def test_failover_resets_network(self, warm_service):
        warm_service.network_multiplier = 30.0
        warm_service.network_drop_rate = 0.1
        build_fix("failover_network").apply(warm_service)
        assert warm_service.network_multiplier == 1.0
        assert warm_service.network_drop_rate == 0.0

    def test_notify_admin_pages(self, warm_service):
        application = build_fix("notify_admin").apply(warm_service)
        assert warm_service.admin_notifications
        assert application.cost_ticks >= 1

    def test_rollback_config_detail(self, warm_service):
        warm_service.app.capacity = 1
        application = build_fix("rollback_config").apply(warm_service)
        assert warm_service.app.capacity == 8
        assert "known-good" in application.detail

    def test_restart_service_counts(self, warm_service):
        build_fix("restart_service").apply(warm_service)
        assert warm_service.restart_count == 1
        assert warm_service.downtime_remaining > 0
