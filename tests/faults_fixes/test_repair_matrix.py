"""Unit-level fault-vs-fix repair matrix.

Every fault declares which fix applications repair it; these tests pin
that matrix (Table 1's semantics) without running the simulator.
"""

import pytest

from repro.faults.app_faults import (
    DeadlockedThreadsFault,
    SoftwareAgingFault,
    SourceCodeBugFault,
    UnhandledExceptionFault,
)
from repro.faults.db_faults import (
    BufferContentionFault,
    HungQueryFault,
    StaleStatisticsFault,
    TableContentionFault,
)
from repro.faults.infra_faults import (
    LoadSurgeFault,
    NetworkFault,
    TierCapacityLossFault,
    TransientGlitchFault,
)
from repro.faults.operator_faults import OperatorMisconfigFault
from repro.fixes.base import FixApplication


def _application(kind, target=None):
    return FixApplication(kind=kind, target=target, cost_ticks=1, detail="t")


class TestComponentScopedRepairs:
    def test_deadlock_needs_the_right_bean(self):
        fault = DeadlockedThreadsFault("ItemBean")
        assert fault.repaired_by(_application("microreboot_ejb", "ItemBean"))
        assert not fault.repaired_by(
            _application("microreboot_ejb", "BidBean")
        )

    def test_deadlock_repaired_by_containing_scopes(self):
        fault = DeadlockedThreadsFault("ItemBean")
        assert fault.repaired_by(_application("reboot_tier", "app"))
        assert not fault.repaired_by(_application("reboot_tier", "db"))
        assert fault.repaired_by(_application("restart_service"))

    def test_exception_mirrors_deadlock_semantics(self):
        fault = UnhandledExceptionFault("BidBean", 0.5)
        assert fault.repaired_by(_application("microreboot_ejb", "BidBean"))
        assert not fault.repaired_by(_application("kill_hung_query"))


class TestPersistentStateRepairs:
    def test_stale_statistics_only_analyze_helps(self):
        fault = StaleStatisticsFault()
        assert fault.repaired_by(_application("update_statistics"))
        for wrong in ("restart_service", "reboot_tier", "repartition_table"):
            assert not fault.repaired_by(_application(wrong, "db"))

    def test_table_contention_accepts_matching_or_auto_target(self):
        fault = TableContentionFault("items")
        assert fault.repaired_by(_application("repartition_table", "items"))
        assert fault.repaired_by(_application("repartition_table", None))
        assert not fault.repaired_by(_application("repartition_table", "bids"))

    def test_buffer_contention_two_remedies(self):
        fault = BufferContentionFault()
        assert fault.repaired_by(_application("repartition_memory"))
        assert fault.repaired_by(_application("rollback_config"))
        assert not fault.repaired_by(_application("restart_service"))


class TestInfraRepairs:
    def test_capacity_loss_needs_matching_tier(self):
        fault = TierCapacityLossFault("db")
        assert fault.repaired_by(_application("provision_tier", "db"))
        assert not fault.repaired_by(_application("provision_tier", "web"))

    def test_surge_is_never_repaired_only_compensated(self):
        fault = LoadSurgeFault()
        assert not fault.repaired_by(_application("provision_tier", "app"))

    def test_network_fault_failover_only(self):
        fault = NetworkFault()
        assert fault.repaired_by(_application("failover_network"))
        assert not fault.repaired_by(_application("restart_service"))

    def test_glitch_restart_or_wait(self):
        fault = TransientGlitchFault()
        assert fault.repaired_by(_application("restart_service"))
        assert not fault.repaired_by(_application("reboot_tier", "db"))


class TestAgingAndBug:
    def test_aging_rejuvenation(self):
        fault = SoftwareAgingFault()
        assert fault.repaired_by(_application("reboot_tier", "app"))
        assert fault.repaired_by(_application("restart_service"))
        assert not fault.repaired_by(_application("microreboot_ejb", "X"))

    def test_chronic_aging_survives_reboots(self):
        fault = SoftwareAgingFault(chronic=True)
        assert not fault.repaired_by(_application("reboot_tier", "app"))
        assert not fault.repaired_by(_application("restart_service"))

    def test_bug_restart_only(self):
        fault = SourceCodeBugFault()
        assert fault.repaired_by(_application("restart_service"))
        assert not fault.repaired_by(_application("reboot_tier", "app"))

    def test_hung_query_kill_or_db_reboot(self):
        fault = HungQueryFault("items")
        assert fault.repaired_by(_application("kill_hung_query", "whatever"))
        assert fault.repaired_by(_application("reboot_tier", "db"))
        assert not fault.repaired_by(_application("reboot_tier", "app"))

    def test_operator_rollback_only(self):
        fault = OperatorMisconfigFault("heap")
        assert fault.repaired_by(_application("rollback_config"))
        assert not fault.repaired_by(_application("reboot_tier", "app"))


class TestConstructorValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            UnhandledExceptionFault("B", rate=0.0)
        with pytest.raises(ValueError):
            SoftwareAgingFault(leak_mb_per_tick=0.0)
        with pytest.raises(ValueError):
            SourceCodeBugFault(error_rate=2.0)
        with pytest.raises(ValueError):
            StaleStatisticsFault(phantom_skew=1.0)
        with pytest.raises(ValueError):
            TierCapacityLossFault("cache")
        with pytest.raises(ValueError):
            LoadSurgeFault(factor=1.0)
        with pytest.raises(ValueError):
            NetworkFault(drop_rate=1.0)
        with pytest.raises(ValueError):
            TransientGlitchFault(multiplier=1.0)
        with pytest.raises(ValueError):
            OperatorMisconfigFault("sudo_rm_rf")
