"""Tests for the fault and fix catalogs (the machine-readable Table 1)."""

import numpy as np
import pytest

from repro.faults.base import CATEGORIES, Fault
from repro.faults.catalog import FAILURE_CATALOG, catalog_entry, sample_fault
from repro.faults.scenarios import (
    FIG4_FAULT_KINDS,
    SERVICE_PROFILES,
    sample_fault_for_category,
    sample_fig4_fault,
)
from repro.fixes.base import Fix
from repro.fixes.catalog import (
    ALL_FIX_KINDS,
    ESCALATION_ORDER,
    NOTIFY_ADMIN,
    build_fix,
    fix_class,
)


class TestFailureCatalog:
    def test_thirteen_failure_kinds(self):
        assert len(FAILURE_CATALOG) == 13
        kinds = [entry.kind for entry in FAILURE_CATALOG]
        assert len(kinds) == len(set(kinds))

    def test_canonical_fix_is_first_candidate(self):
        for entry in FAILURE_CATALOG:
            fault = entry.default_factory()
            assert fault.canonical_fix == entry.candidate_fixes[0]

    def test_categories_valid(self):
        for entry in FAILURE_CATALOG:
            assert entry.category in CATEGORIES

    def test_candidate_fixes_are_real(self):
        valid = set(ALL_FIX_KINDS) | {NOTIFY_ADMIN}
        for entry in FAILURE_CATALOG:
            assert set(entry.candidate_fixes) <= valid

    def test_samplers_produce_matching_kind(self):
        rng = np.random.default_rng(5)
        for entry in FAILURE_CATALOG:
            fault = entry.sampler(rng)
            assert isinstance(fault, Fault)
            assert fault.kind == entry.kind
            assert not fault.active

    def test_lookup(self):
        assert catalog_entry("stale_statistics").kind == "stale_statistics"
        with pytest.raises(KeyError):
            catalog_entry("flux_capacitor")
        rng = np.random.default_rng(1)
        assert sample_fault("hung_query", rng).kind == "hung_query"


class TestScenarios:
    def test_fig4_kinds_cover_all_learnable_fixes(self):
        rng = np.random.default_rng(2)
        labels = {
            sample_fault(kind, rng).canonical_fix
            for kind in FIG4_FAULT_KINDS
        }
        assert labels == set(ALL_FIX_KINDS)

    def test_profiles_sum_to_one_with_operator_on_top(self):
        for name, mix in SERVICE_PROFILES.items():
            assert sum(mix.values()) == pytest.approx(1.0), name
            assert max(mix, key=mix.get) == "operator", name

    def test_category_sampler(self):
        rng = np.random.default_rng(3)
        for category in ("operator", "software", "hardware", "network",
                         "unknown"):
            fault = sample_fault_for_category(category, rng)
            assert fault.category == category
        with pytest.raises(KeyError):
            sample_fault_for_category("cosmic", rng)

    def test_fig4_sampler(self):
        rng = np.random.default_rng(4)
        kinds = {sample_fig4_fault(rng).kind for _ in range(60)}
        assert len(kinds) >= 8  # decent coverage of the pool


class TestFixCatalog:
    def test_all_fix_kinds_buildable(self):
        for kind in ALL_FIX_KINDS:
            fix = build_fix(kind)
            assert isinstance(fix, Fix)
            assert fix.kind == kind
            assert fix.cost_ticks >= 1
            assert fix.scope in ("component", "tier", "service", "config",
                                 "manual")

    def test_escalation_ends_with_human(self):
        assert ESCALATION_ORDER[-1] == NOTIFY_ADMIN

    def test_microreboot_is_cheapest_reboot(self):
        micro = fix_class("microreboot_ejb").cost_ticks
        tier = fix_class("reboot_tier").cost_ticks
        full = fix_class("restart_service").cost_ticks
        assert micro < tier < full

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            build_fix("percussive_maintenance")

    def test_target_pinning(self):
        fix = build_fix("microreboot_ejb", target="BidBean")
        assert fix.target == "BidBean"
