"""Golden-stats equivalence tests for the vectorized tick engine.

The perf rework (vectorized collectors, mirrored ring buffer,
incremental tracer sums, inlined plan costing, blueprint codegen) is
required to be *bit-for-bit* behaviour-preserving: at a fixed seed a
campaign must produce exactly the episode reports and statistics the
pre-optimization implementation produced.  ``golden_stats.json`` was
captured from that implementation by ``tools/capture_perf_goldens.py``;
these tests replay the same campaigns and compare every recorded
number.

If one of these fails after an engine change, the change altered
simulation semantics (or RNG stream consumption) — that is a bug in
the change unless the semantic shift is intentional, in which case the
goldens must be deliberately regenerated and the change called out.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.experiments.campaign import CampaignResult, run_campaign
from repro.fleet.campaign import run_fleet_campaign
from repro.scenarios.runner import (
    build_approach,
    replay_campaign,
    run_scenario,
)
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_stats.json")


@pytest.fixture(scope="module")
def goldens() -> dict:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def assert_matches_golden(result: CampaignResult, golden: dict) -> None:
    """Compare a fresh campaign against one golden stats block."""
    assert result.injected == golden["injected"]
    assert result.undetected == golden["undetected"]
    assert len(result.reports) == golden["n_reports"]
    assert result.escalation_rate == golden["escalation_rate"]
    assert result.mean_attempts == golden["mean_attempts"]
    assert result.mean_detection_ticks() == golden["mean_detection_ticks"]
    recovery = result.mean_recovery_ticks()
    if golden["mean_recovery_ticks"] is None:
        assert math.isnan(recovery)
    else:
        assert recovery == golden["mean_recovery_ticks"]
    for report, expected in zip(result.reports, golden["reports"]):
        assert report.event_id == expected["event_id"]
        assert list(report.fault_kinds) == expected["fault_kinds"]
        assert report.fault_category == expected["fault_category"]
        assert report.injected_at == expected["injected_at"]
        assert report.detected_at == expected["detected_at"]
        assert report.recovered_at == expected["recovered_at"]
        assert [
            [a.kind, a.target] for a in report.applications
        ] == expected["applications"]
        assert list(report.outcomes) == expected["outcomes"]
        assert report.successful_fix == expected["successful_fix"]
        assert report.escalated == expected["escalated"]
        assert report.admin_resolved == expected["admin_resolved"]


class TestSingleServiceGoldens:
    def test_campaigns_reproduce_golden_stats(self, goldens):
        for case in goldens["single_service"]:
            service = MultitierService(ServiceConfig(seed=case["seed"]))
            result = run_campaign(
                build_approach(case["approach"]),
                n_episodes=case["n_episodes"],
                seed=case["seed"],
                service=service,
            )
            assert service.tick == case["final_tick"], case["approach"]
            assert result.total_ticks == case["final_tick"]
            assert_matches_golden(result, case["stats"])


def assert_fleet_matches_golden(result, stats: dict) -> None:
    assert result.knowledge_entries == stats["knowledge_entries"]
    assert result.knowledge_absorbed == stats["knowledge_absorbed"]
    for campaign, expected in zip(
        result.per_service, stats["per_service"]
    ):
        assert_matches_golden(campaign, expected)
    assert_matches_golden(result.pooled, stats["pooled"])


class TestFleetGoldens:
    def test_fleet_campaign_reproduces_golden_stats(self, goldens):
        case = goldens["fleet"]
        result = run_fleet_campaign(
            n_services=case["n_services"],
            episodes_per_service=case["episodes_per_service"],
            seed=case["seed"],
            workers=1,
        )
        assert_fleet_matches_golden(result, case["stats"])

    @pytest.mark.parametrize("engine", ["object", "columnar"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_reproduces_golden_stats(
        self, goldens, workers, engine
    ):
        """Sharding and the columnar engine are bit-identical to the
        serial object reference for any worker count.

        The ``fleet_multi`` golden was captured with the in-process
        object-engine runner; 2 workers shard its 4 replicas
        two-per-process, 4 workers one-per-process, and
        ``engine="columnar"`` swaps the execution engine under every
        sharding — every per-report field and the knowledge counters
        must reproduce exactly in all six combinations."""
        case = goldens["fleet_multi"]
        result = run_fleet_campaign(
            n_services=case["n_services"],
            episodes_per_service=case["episodes_per_service"],
            seed=case["seed"],
            workers=workers,
            engine=engine,
        )
        assert_fleet_matches_golden(result, case["stats"])


class TestScenarioGoldens:
    def test_scenario_run_and_replay_reproduce_golden_stats(
        self, goldens, tmp_path
    ):
        case = goldens["scenario"]
        trace = str(tmp_path / "golden.jsonl")
        run = run_scenario(
            case["name"],
            seed=case["seed"],
            n_episodes=case["n_episodes"],
            record_path=trace,
        )
        # The trace bytes themselves are part of the contract: the
        # recorded telemetry hashes to the pre-optimization digest.
        assert run.trace_sha256 == case["trace_sha256"]
        assert_matches_golden(run.result, case["stats"])

        replayed = replay_campaign(trace)
        assert_matches_golden(replayed.result, case["replay_stats"])
