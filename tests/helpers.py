"""Shared test utilities for capturing live failure events."""

from __future__ import annotations

from repro.faults.base import Fault
from repro.faults.injector import FaultInjector
from repro.healing.loop import HealingHarness
from repro.monitoring.detector import FailureEvent
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService


def capture_event(
    fault: Fault,
    seed: int = 11,
    include_invasive: bool = True,
    max_wait: int = 150,
) -> tuple[MultitierService, FaultInjector, HealingHarness, FailureEvent]:
    """Warm a service, inject ``fault``, return the detector's event."""
    service = MultitierService(ServiceConfig(seed=seed))
    harness = HealingHarness(service, include_invasive=include_invasive)
    injector = FaultInjector(service)
    for _ in range(140):
        harness.observe(service.step())
    injector.inject(fault, service.tick)
    event = None
    for _ in range(max_wait):
        snapshot = service.step()
        injector.on_tick(service.tick)
        event = harness.observe(snapshot)
        if event is not None:
            break
    if event is None:
        raise AssertionError(f"{fault.kind} never produced a failure event")
    return service, injector, harness, event
