"""Property-based invariants of the simulator under arbitrary faults."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.catalog import FAILURE_CATALOG
from repro.faults.injector import FaultInjector
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService

_KINDS = [entry.kind for entry in FAILURE_CATALOG]


@given(
    seed=st.integers(0, 2**16),
    kind=st.sampled_from(_KINDS),
    ticks=st.integers(5, 25),
)
@settings(max_examples=15, deadline=None)
def test_snapshots_stay_physical_under_any_fault(seed, kind, ticks):
    """No fault can push the simulator outside physical bounds."""
    service = MultitierService(ServiceConfig(seed=seed))
    injector = FaultInjector(service)
    service.run(10)
    entry = next(e for e in FAILURE_CATALOG if e.kind == kind)
    injector.inject(
        entry.sampler(np.random.default_rng(seed)), service.tick
    )
    for _ in range(ticks):
        snapshot = service.step()
        injector.on_tick(service.tick)
        assert 0.0 <= snapshot.error_rate <= 1.0
        assert snapshot.latency_ms >= 0.0
        assert snapshot.errors <= snapshot.total_requests
        for utilization in (
            snapshot.web_utilization,
            snapshot.app_utilization,
            snapshot.db_utilization,
        ):
            assert 0.0 <= utilization <= 1.0
        assert 0.0 <= snapshot.heap_used_mb <= service.app.heap_mb + 1e-9
        for ratio in snapshot.buffer_hit.values():
            assert 0.0 <= ratio <= 1.0
        assert snapshot.est_act_ratio >= 1.0 - 1e-9


@given(
    seed=st.integers(0, 2**16),
    kind=st.sampled_from(_KINDS),
)
@settings(max_examples=15, deadline=None)
def test_inject_then_clear_restores_compliance(seed, kind):
    """Every fault's clear() genuinely reverses its perturbation."""
    service = MultitierService(ServiceConfig(seed=seed))
    injector = FaultInjector(service)
    service.run(25)
    entry = next(e for e in FAILURE_CATALOG if e.kind == kind)
    fault = entry.sampler(np.random.default_rng(seed + 1))
    injector.inject(fault, service.tick)
    service.run(20)
    injector.clear_all(service.tick, cleared_by="oracle")
    # Residual transients (filled heap, pinned threads) need the tier
    # mechanics a real recovery would use.
    if service.app.heap_fraction > 0.6 or service.app.threads_stuck > 0:
        service.app.reboot()
    service.slo_monitor.reset()
    streak = 0
    for _ in range(80):
        snapshot = service.step()
        streak = streak + 1 if not snapshot.slo_violated else 0
        if streak >= 10:
            break
    assert streak >= 10, f"{kind}: service did not return to compliance"


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_same_seed_same_trajectory(seed):
    a = MultitierService(ServiceConfig(seed=seed)).run(15)
    b = MultitierService(ServiceConfig(seed=seed)).run(15)
    assert [s.latency_ms for s in a] == [s.latency_ms for s in b]
    assert [s.errors for s in a] == [s.errors for s in b]
