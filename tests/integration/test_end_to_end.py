"""End-to-end integration: the full stack heals every Table 1 failure.

These complement ``bench_table1`` (which verifies catalogued fix
efficacy via direct application) by exercising the *automated* path:
detector -> approach -> fix selection -> verification, with no
human-supplied targets anywhere.
"""

import pytest

from repro.core.approaches.anomaly import AnomalyDetectionApproach
from repro.core.approaches.bottleneck import BottleneckAnalysisApproach
from repro.core.approaches.combined import CombinedApproach
from repro.core.approaches.signature import SignatureApproach
from repro.core.synopses import NaiveBayesSynopsis
from repro.faults.catalog import catalog_entry
from repro.faults.injector import FaultInjector
from repro.fixes.catalog import ALL_FIX_KINDS
from repro.healing.loop import SelfHealingLoop
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService


def _combined_loop(seed=19):
    service = MultitierService(ServiceConfig(seed=seed))
    injector = FaultInjector(service)
    approach = CombinedApproach(
        SignatureApproach(NaiveBayesSynopsis(ALL_FIX_KINDS)),
        diagnosers=[AnomalyDetectionApproach(), BottleneckAnalysisApproach()],
    )
    loop = SelfHealingLoop(service, approach, injector=injector, seed=seed)
    loop.warmup()
    return service, injector, loop


@pytest.mark.parametrize(
    "kind",
    [
        "deadlocked_threads",
        "unhandled_exception",
        "stale_statistics",
        "tier_capacity_loss",
        "network_fault",
        "buffer_contention",
    ],
)
def test_combined_approach_heals_without_escalation(kind):
    service, injector, loop = _combined_loop()
    injector.inject(catalog_entry(kind).default_factory(), service.tick)
    reports = loop.run(400)
    assert len(reports) == 1, f"{kind}: expected exactly one episode"
    report = reports[0]
    assert report.recovered, f"{kind}: never recovered"
    assert not report.admin_resolved, f"{kind}: needed a human"


def test_successive_failures_build_signatures():
    service, injector, loop = _combined_loop()
    synopsis = loop.approach.signature.synopsis
    for kind in ("hung_query", "software_aging", "hung_query"):
        injector.inject(catalog_entry(kind).default_factory(), service.tick)
        reports = loop.run(500)
        assert reports and reports[-1].recovered, kind
        if injector.any_active:
            injector.clear_all(service.tick, cleared_by="cleanup")
    assert synopsis.n_samples >= 3


def test_service_survives_back_to_back_failures():
    """Availability stays reasonable through a short failure storm."""
    service, injector, loop = _combined_loop(seed=29)
    violation_before = service.slo_monitor.total_violation_ticks
    tick_before = service.tick
    for kind in ("unhandled_exception", "network_fault"):
        injector.inject(catalog_entry(kind).default_factory(), service.tick)
        loop.run(250)
        if injector.any_active:
            injector.clear_all(service.tick, cleared_by="cleanup")
    elapsed = service.tick - tick_before
    violated = service.slo_monitor.total_violation_ticks - violation_before
    assert violated / elapsed < 0.35  # mostly available through the storm
