"""Tests for scenario packs: registry, determinism, workload shaping."""

import numpy as np
import pytest

from repro.scenarios.packs import (
    DB_FAULT_KINDS,
    RetryAmplifier,
    build_scenario_service,
    get_scenario,
    list_scenarios,
)
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService, TickSnapshot
from repro.simulator.workload import Workload, bidding_profile

EXPECTED_PACKS = (
    "black_friday",
    "cache_stampede",
    "diurnal",
    "flash_crowd",
    "retry_storm",
    "slow_burn",
    "wide_mix",
)


class TestRegistry:
    def test_expected_packs_registered(self):
        assert tuple(p.name for p in list_scenarios()) == EXPECTED_PACKS

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="flash_crowd"):
            get_scenario("thundering_herd")

    def test_every_pack_documents_expected_behavior(self):
        for pack in list_scenarios():
            assert pack.description
            assert pack.expected_behavior


def _sampled_params(fault) -> dict:
    """Instance parameters that the schedule contract covers.

    ``txn_id`` is a process-global uniqueness token (so two live hung
    queries never collide in the lock manager), not a sampled
    parameter — it legitimately differs between two builds of the
    same schedule.
    """
    return {k: v for k, v in vars(fault).items() if k != "txn_id"}


class TestFaultPlans:
    @pytest.mark.parametrize("name", EXPECTED_PACKS)
    def test_same_seed_same_schedule(self, name):
        pack = get_scenario(name)
        a = pack.build_faults(17, 5)
        b = pack.build_faults(17, 5)
        assert [f.kind for f in a] == [f.kind for f in b]
        # Instance parameters must match too, not just kinds.
        assert [_sampled_params(f) for f in a] == [
            _sampled_params(f) for f in b
        ]

    @pytest.mark.parametrize("name", EXPECTED_PACKS)
    def test_different_seed_different_schedule(self, name):
        pack = get_scenario(name)
        a = pack.build_faults(1, 8)
        b = pack.build_faults(2, 8)
        assert [_sampled_params(f) for f in a] != [
            _sampled_params(f) for f in b
        ]

    def test_black_friday_strikes_are_database_rooted(self):
        faults = get_scenario("black_friday").build_faults(5, 12)
        assert {f.kind for f in faults} <= set(DB_FAULT_KINDS)

    def test_flash_crowd_surges_are_order_10x(self):
        faults = get_scenario("flash_crowd").build_faults(5, 6)
        surges = [f for f in faults if f.kind == "load_surge"]
        assert surges, "flash crowd must contain load surges"
        assert all(9.0 <= f.factor <= 11.0 for f in surges)

    def test_negative_episode_count_rejected(self):
        with pytest.raises(ValueError):
            get_scenario("diurnal").build_faults(0, -1)


class TestCacheStampede:
    def test_strikes_are_database_rooted(self):
        faults = get_scenario("cache_stampede").build_faults(5, 12)
        assert {f.kind for f in faults} <= {
            "buffer_contention",
            "table_contention",
            "hung_query",
        }
        # Every third slot wedges a query in the pile-up.
        assert [f.kind for f in faults][2::3] == ["hung_query"] * 4

    def test_workload_is_ttl_periodic(self):
        pack = get_scenario("cache_stampede")
        service = build_scenario_service(pack, ServiceConfig(seed=3))
        workload = service.workload
        assert workload.pattern == "bursty"
        # Stampede at each TTL expiry, quiet in between.
        assert workload.rate_at(10) == pytest.approx(
            3.0 * workload.base_rate
        )
        assert workload.rate_at(150) == pytest.approx(workload.base_rate)
        assert workload.rate_at(310) == pytest.approx(
            3.0 * workload.base_rate
        )

    def test_fleet_strikes_are_mostly_correlated(self):
        pack = get_scenario("cache_stampede")
        assert pack.fleet_kinds == DB_FAULT_KINDS
        assert pack.p_correlated == 0.8
        assert pack.p_cascade == 0.0

    def test_record_replay_round_trip(self, tmp_path):
        from repro.scenarios.runner import replay_campaign, run_scenario

        trace = str(tmp_path / "stampede.jsonl")
        run = run_scenario(
            "cache_stampede", seed=9, n_episodes=3, record_path=trace
        )
        replayed = replay_campaign(trace)
        assert replayed.result.injected == run.result.injected
        assert replayed.result.undetected == run.result.undetected
        assert len(replayed.result.reports) == len(run.result.reports)
        for a, b in zip(run.result.reports, replayed.result.reports):
            assert a.detected_at == b.detected_at
            assert a.recovered_at == b.recovered_at
            assert a.successful_fix == b.successful_fix

    def test_deterministic_trace_hash(self, tmp_path):
        from repro.scenarios.runner import run_scenario

        hashes = []
        for name in ("a.jsonl", "b.jsonl"):
            run = run_scenario(
                "cache_stampede",
                seed=9,
                n_episodes=2,
                record_path=str(tmp_path / name),
            )
            hashes.append(run.trace_sha256)
        assert hashes[0] == hashes[1]


class TestWorkloadShapes:
    def test_bursty_pattern_is_periodic(self, rng):
        workload = Workload(
            bidding_profile(),
            100.0,
            rng,
            pattern="bursty",
            surge_factor=3.0,
            surge_period=100,
            surge_duration=20,
        )
        assert workload.rate_at(5) == pytest.approx(300.0)
        assert workload.rate_at(50) == pytest.approx(100.0)
        assert workload.rate_at(105) == pytest.approx(300.0)

    def test_bursty_requires_period(self, rng):
        with pytest.raises(ValueError):
            Workload(bidding_profile(), 100.0, rng, pattern="bursty")

    def test_diurnal_period_override(self, rng):
        workload = Workload(
            bidding_profile(), 100.0, rng, pattern="diurnal",
            diurnal_period=400.0,
        )
        # Quarter period = sinusoid peak.
        assert workload.rate_at(100) == pytest.approx(150.0)

    def test_build_scenario_service_applies_shape_and_slo(self):
        pack = get_scenario("flash_crowd")
        service = build_scenario_service(pack, ServiceConfig(seed=3))
        assert service.workload.pattern == "bursty"
        assert service.slo.latency_ms == pack.slo.latency_ms

    def test_black_friday_scales_arrivals(self):
        config = ServiceConfig(seed=3)
        service = build_scenario_service(get_scenario("black_friday"), config)
        assert service.workload.base_rate == pytest.approx(
            config.arrival_rate * 1.6
        )
        # The caller's template is not mutated.
        assert config.arrival_rate == ServiceConfig().arrival_rate


class TestRetryAmplifier:
    def _snapshot(self, error_rate: float) -> TickSnapshot:
        return TickSnapshot(
            tick=0,
            available=True,
            request_counts={},
            total_requests=100,
            errors=int(100 * error_rate),
            error_rate=error_rate,
            latency_ms=50.0,
        )

    def test_errors_amplify_and_recovery_decays(self):
        service = MultitierService(ServiceConfig(seed=3))
        amplifier = RetryAmplifier(gain=2.0, max_factor=5.0, decay=0.5)
        amplifier.attach(service)
        assert amplifier in service.tick_hooks

        for _ in range(20):
            amplifier(self._snapshot(1.0))
        assert amplifier.factor == pytest.approx(5.0)
        assert service.workload.rate_multiplier == pytest.approx(5.0)

        for _ in range(80):
            amplifier(self._snapshot(0.0))
        assert amplifier.factor == pytest.approx(1.0, abs=1e-6)
        assert service.workload.rate_multiplier == pytest.approx(
            1.0, abs=1e-6
        )

    def test_feedback_composes_with_external_multipliers(self):
        service = MultitierService(ServiceConfig(seed=3))
        amplifier = RetryAmplifier(gain=2.0, max_factor=4.0, decay=0.0)
        amplifier.attach(service)
        service.workload.rate_multiplier *= 2.0  # a fault's surge
        amplifier(self._snapshot(1.0))
        # Retry factor 3.0 on top of the fault's 2.0.
        assert service.workload.rate_multiplier == pytest.approx(6.0)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RetryAmplifier(gain=-1.0)
        with pytest.raises(ValueError):
            RetryAmplifier(max_factor=0.5)
        with pytest.raises(ValueError):
            RetryAmplifier(decay=1.0)


class TestServiceTickHooks:
    def test_hooks_fire_every_tick_including_downtime(self):
        service = MultitierService(ServiceConfig(seed=3))
        seen: list[TickSnapshot] = []
        service.tick_hooks.append(seen.append)
        service.run(3)
        service.restart_service()  # forces downtime ticks
        service.run(2)
        assert len(seen) == 5
        assert [s.tick for s in seen] == list(range(5))
        assert not seen[-1].available  # downtime snapshots included
