"""Tests for the property-based scenario generator."""

import json

import pytest

from repro.scenarios.generator import (
    ALL_FAULT_KINDS,
    GeneratedScenario,
    build_fault,
    fault_to_spec,
    generate_scenario,
    sample_fault_spec,
)
from repro.simulator.rng import derive_rng


def make_spec(slots, **overrides) -> GeneratedScenario:
    """A cheap hand-built spec for fast campaign-level tests."""
    fields = dict(
        name="crafted",
        seed=5,
        workload={
            "pattern": "constant",
            "options": {},
            "arrival_scale": 1.0,
            "retry": None,
        },
        slo=None,
        fault_plan=tuple(slots),
        fleet={
            "n_services": 1,
            "episodes_per_service": 1,
            "p_correlated": 0.4,
            "p_cascade": 0.0,
            "kinds": sorted({s["kind"] for s in slots}),
        },
        max_episode_wait=40,
        settle_ticks=10,
    )
    fields.update(overrides)
    return GeneratedScenario(**fields)


class TestFaultSpecs:
    @pytest.mark.parametrize("kind", ALL_FAULT_KINDS)
    def test_sample_build_roundtrip(self, kind, rng):
        spec = sample_fault_spec(rng, kind=kind)
        fault = build_fault(spec)
        assert fault.kind == kind
        assert fault_to_spec(fault) == spec

    def test_unknown_kind_rejected(self, rng):
        with pytest.raises(KeyError):
            sample_fault_spec(rng, kind="disk_on_fire")
        with pytest.raises(KeyError):
            build_fault({"kind": "disk_on_fire", "params": {}})

    def test_specs_are_json_serializable(self, rng):
        for kind in ALL_FAULT_KINDS:
            spec = sample_fault_spec(rng, kind=kind)
            assert json.loads(json.dumps(spec)) == spec


class TestGeneration:
    def test_same_seed_same_spec(self):
        a = generate_scenario(11, 4)
        b = generate_scenario(11, 4)
        assert a.canonical_json() == b.canonical_json()
        assert a.spec_hash() == b.spec_hash()

    def test_different_cases_differ(self):
        specs = [generate_scenario(11, case) for case in range(4)]
        hashes = {spec.spec_hash() for spec in specs}
        assert len(hashes) == len(specs)

    def test_different_seeds_differ(self):
        assert (
            generate_scenario(1, 0).canonical_json()
            != generate_scenario(2, 0).canonical_json()
        )

    @pytest.mark.parametrize("case", range(5))
    def test_generated_specs_are_valid(self, case):
        spec = generate_scenario(3, case)
        assert 3 <= spec.n_episodes <= 8
        assert spec.workload["pattern"] in ("constant", "diurnal", "bursty")
        assert 1 <= spec.fleet["n_services"] <= 3
        # Every slot builds a real fault instance (constructor
        # validation runs), and the pack composes without error.
        faults = spec.build_faults()
        assert [f.kind for f in faults] == [
            slot["kind"] for slot in spec.fault_plan
        ]
        pack = spec.to_pack()
        assert pack.n_episodes == spec.n_episodes

    def test_generation_draws_are_component_independent(self):
        # The workload stream must not perturb the plan stream: the
        # plan of (seed, case) equals a fresh derivation of the same
        # component path.
        spec = generate_scenario(7, 2)
        from repro.scenarios.generator import _generate_plan

        again = _generate_plan(derive_rng(7, "fuzz", 2, "plan"))
        assert list(spec.fault_plan) == again


class TestSerialization:
    def test_json_roundtrip(self):
        spec = generate_scenario(9, 1)
        clone = GeneratedScenario.from_json_dict(spec.to_json_dict())
        assert clone == spec
        assert clone.canonical_json() == spec.canonical_json()

    def test_dump_load(self, tmp_path):
        spec = generate_scenario(9, 2)
        path = str(tmp_path / "spec.json")
        spec.dump(path)
        assert GeneratedScenario.load(path) == spec

    def test_load_corpus_entry_layout(self, tmp_path):
        spec = generate_scenario(9, 3)
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"name": "entry", "spec": spec.to_json_dict()}, handle
            )
        assert GeneratedScenario.load(path) == spec

    def test_unsupported_version_rejected(self):
        payload = generate_scenario(9, 4).to_json_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            GeneratedScenario.from_json_dict(payload)


class TestPack:
    def test_pack_truncates_plan(self, rng):
        slots = [
            sample_fault_spec(rng, kind="deadlocked_threads")
            for _ in range(4)
        ]
        pack = make_spec(slots).to_pack()
        assert len(pack.build_faults(0, 2)) == 2
        # The pack's seed argument is ignored: the spec is concrete.
        a = pack.build_faults(1, 4)
        b = pack.build_faults(2, 4)
        assert [vars(x)["bean"] for x in a] == [vars(x)["bean"] for x in b]

    def test_pack_carries_workload_and_fleet_mix(self, rng):
        spec = make_spec(
            [sample_fault_spec(rng, kind="buffer_contention")],
            workload={
                "pattern": "bursty",
                "options": {
                    "surge_factor": 3.0,
                    "surge_period": 300,
                    "surge_duration": 50,
                },
                "arrival_scale": 1.2,
                "retry": [2.0, 4.0, 0.5],
            },
            slo={"latency_ms": 200.0, "error_rate": 0.05},
            fleet={
                "n_services": 2,
                "episodes_per_service": 2,
                "p_correlated": 0.6,
                "p_cascade": 0.1,
                "kinds": ["buffer_contention"],
            },
        )
        pack = spec.to_pack()
        assert pack.pattern == "bursty"
        assert pack.retry == (2.0, 4.0, 0.5)
        assert pack.slo.latency_ms == 200.0
        assert pack.fleet_kinds == ("buffer_contention",)
        assert pack.p_correlated == 0.6
