"""Trace determinism and record→replay round-trip equality."""

import json

import pytest

from repro.cli import main
from repro.fleet.campaign import aggregate_campaigns, run_fleet_campaign
from repro.healing.report import EpisodeReport
from repro.scenarios import (
    format_scenario,
    load_trace,
    replay_campaign,
    replay_fleet_campaign,
    run_scenario,
    trace_sha256,
)

# Small-but-real campaign shape shared by the round-trip tests.
SCENARIO = "retry_storm"
SEED = 3
EPISODES = 2


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded scenario campaign, reused across tests."""
    path = tmp_path_factory.mktemp("traces") / "scenario.jsonl"
    run = run_scenario(
        SCENARIO, seed=SEED, n_episodes=EPISODES, record_path=str(path)
    )
    return run, str(path)


def _assert_reports_equal(a: EpisodeReport, b: EpisodeReport) -> None:
    assert a.fault_kinds == b.fault_kinds
    assert a.fault_category == b.fault_category
    assert a.injected_at == b.injected_at
    assert a.detected_at == b.detected_at
    assert a.recovered_at == b.recovered_at
    assert a.successful_fix == b.successful_fix
    assert a.escalated == b.escalated
    assert a.admin_resolved == b.admin_resolved
    assert a.outcomes == b.outcomes
    assert [(app.kind, app.target) for app in a.applications] == [
        (app.kind, app.target) for app in b.applications
    ]


class TestDeterminism:
    def test_same_seed_same_trace_hash(self, tmp_path):
        runs = [
            run_scenario(
                SCENARIO,
                seed=SEED,
                n_episodes=EPISODES,
                record_path=str(tmp_path / f"t{i}.jsonl"),
            )
            for i in range(2)
        ]
        assert runs[0].trace_sha256 == runs[1].trace_sha256
        assert runs[0].trace_sha256 == trace_sha256(runs[0].trace_path)

    def test_different_seed_different_trace_hash(self, tmp_path, recorded):
        run, _ = recorded
        other = run_scenario(
            SCENARIO,
            seed=SEED + 1,
            n_episodes=EPISODES,
            record_path=str(tmp_path / "other.jsonl"),
        )
        assert other.trace_sha256 != run.trace_sha256


class TestSingleServiceRoundTrip:
    def test_replay_reproduces_campaign_statistics(self, recorded):
        run, path = recorded
        replayed = replay_campaign(path)
        assert replayed.result.injected == run.result.injected
        assert replayed.result.undetected == run.result.undetected
        assert len(replayed.result.reports) == len(run.result.reports)
        for a, b in zip(run.result.reports, replayed.result.reports):
            _assert_reports_equal(a, b)
        # The CLI-visible statistics block is byte-identical.
        assert format_scenario(replayed) == format_scenario(run)

    def test_trace_structure(self, recorded):
        run, path = recorded
        header, members = load_trace(path)
        assert header["scenario"] == SCENARIO
        assert header["seed"] == SEED
        assert header["kind"] == "campaign"
        member = members[0]
        assert member.injected == run.result.injected
        assert len(member.faults) == run.result.injected
        # Every recorded tick is strictly sequential from zero.
        assert [t["tick"] for t in member.ticks] == list(
            range(len(member.ticks))
        )

    def test_replay_rejects_wrong_trace_kind(self, tmp_path, recorded):
        _, path = recorded
        with pytest.raises(ValueError, match="fleet"):
            replay_fleet_campaign(path)

    def test_replay_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text(json.dumps({"type": "tick"}) + "\n")
        with pytest.raises(ValueError, match="no header"):
            replay_campaign(str(bogus))


class TestFleetRoundTrip:
    @pytest.fixture(scope="class")
    def fleet_recorded(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "fleet.jsonl"
        result = run_fleet_campaign(
            n_services=2,
            episodes_per_service=2,
            seed=1,
            workers=1,
            scenario="black_friday",
            record_path=str(path),
        )
        return result, str(path)

    def test_replay_reproduces_every_member(self, fleet_recorded):
        result, path = fleet_recorded
        per_member = replay_fleet_campaign(path)
        assert len(per_member) == result.n_services
        for original, replayed in zip(result.per_service, per_member):
            assert original.injected == replayed.injected
            assert original.undetected == replayed.undetected
            assert len(original.reports) == len(replayed.reports)
            for a, b in zip(original.reports, replayed.reports):
                _assert_reports_equal(a, b)

    def test_replay_reproduces_pooled_statistics(self, fleet_recorded):
        result, path = fleet_recorded
        pooled = aggregate_campaigns(replay_fleet_campaign(path))
        assert pooled.mean_attempts == result.pooled.mean_attempts
        assert (
            pooled.mean_detection_ticks()
            == result.pooled.mean_detection_ticks()
        )

    def test_scenario_shapes_fleet_members(self, fleet_recorded):
        result, path = fleet_recorded
        assert result.scenario == "black_friday"
        header, _ = load_trace(path)
        assert header["kind"] == "fleet"
        assert len(header["member_seeds"]) == 2
        # black_friday restricts the strike universe to DB faults
        # (cascade slots additionally surge the survivors).
        from repro.scenarios.packs import DB_FAULT_KINDS

        allowed = set(DB_FAULT_KINDS) | {"tier_capacity_loss", "load_surge"}
        for strike in result.schedule:
            assert set(strike.kinds) <= allowed

    def test_recording_requires_in_process_runner(self, tmp_path):
        with pytest.raises(ValueError, match="workers=1"):
            run_fleet_campaign(
                n_services=2,
                episodes_per_service=1,
                workers=2,
                record_path=str(tmp_path / "nope.jsonl"),
            )


class TestScenarioCLI:
    def test_list_smoke(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("flash_crowd", "diurnal", "retry_storm",
                     "slow_burn", "black_friday"):
            assert name in out

    def test_run_then_replay_prints_identical_statistics(
        self, recorded, capsys
    ):
        _, path = recorded
        assert main(["scenario", "replay", path]) == 0
        replay_out = capsys.readouterr().out
        # The replayed statistics block matches a fresh format of the
        # recorded run (the CLI acceptance check).
        stats = format_scenario(replay_campaign(path))
        assert stats in replay_out
