"""Corpus tests: oracle, shrinker, persistence, CLI gate, goldens.

``TestCommittedCorpus`` is the in-suite twin of the CI corpus-replay
gate: every committed reproducer under ``corpus/`` must replay with a
bit-identical campaign fingerprint.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.campaign import CampaignResult
from repro.fixes.base import FixApplication
from repro.healing.report import EpisodeReport
from repro.scenarios.corpus import (
    VERDICTS,
    _entry_from_run,
    classify,
    fingerprint_result,
    fuzz,
    load_corpus,
    replay_corpus,
    run_generated,
    save_entry,
    shrink,
)
from repro.scenarios.generator import GeneratedScenario, sample_fault_spec

CORPUS_DIR = Path(__file__).resolve().parents[2] / "corpus"


def make_spec(slots, **overrides) -> GeneratedScenario:
    fields = dict(
        name="crafted",
        seed=5,
        workload={
            "pattern": "constant",
            "options": {},
            "arrival_scale": 1.0,
            "retry": None,
        },
        slo=None,
        fault_plan=tuple(slots),
        fleet={
            "n_services": 1,
            "episodes_per_service": 1,
            "p_correlated": 0.4,
            "p_cascade": 0.0,
            "kinds": sorted({s["kind"] for s in slots}),
        },
        max_episode_wait=40,
        settle_ticks=10,
    )
    fields.update(overrides)
    return GeneratedScenario(**fields)


def _application(kind, target=None):
    return FixApplication(kind=kind, target=target, cost_ticks=1, detail="")


def _report(**overrides):
    fields = dict(
        event_id=0,
        fault_kinds=("deadlocked_threads",),
        fault_category="software",
        injected_at=10,
        detected_at=15,
        recovered_at=25,
        applications=[_application("microreboot_ejb", "ItemBean")],
        outcomes=[True],
        successful_fix="microreboot_ejb",
        escalated=False,
        admin_resolved=False,
    )
    fields.update(overrides)
    return EpisodeReport(**fields)


def _result(reports, injected=None, undetected=0):
    return CampaignResult(
        reports=reports,
        injected=injected if injected is not None else len(reports),
        undetected=undetected,
        total_ticks=100,
    )


class TestOracle:
    def test_clean_run_has_no_verdicts(self):
        assert classify(_result([_report()]), [False] * 100) == ()

    def test_missed_detection(self):
        result = _result([_report()], injected=2, undetected=1)
        assert classify(result, [False] * 100) == ("missed_detection",)

    def test_failed_repair_on_admin_resolution(self):
        result = _result([_report(admin_resolved=True, escalated=True)])
        assert "failed_repair" in classify(result, [False] * 100)

    def test_failed_repair_on_no_recovery(self):
        result = _result([_report(recovered_at=None, successful_fix=None)])
        assert "failed_repair" in classify(result, [False] * 100)

    def test_oscillating_repair_is_an_aba_pattern(self):
        aba = _report(
            applications=[
                _application("reboot_tier", "app"),
                _application("update_statistics"),
                _application("reboot_tier", "app"),
            ],
            outcomes=[False, False, True],
            successful_fix="reboot_tier",
        )
        assert "oscillating_repair" in classify(_result([aba]), [False] * 100)
        # A..A (straight retry) and A..B are fine.
        retry = _report(
            applications=[
                _application("reboot_tier", "app"),
                _application("reboot_tier", "app"),
            ],
            outcomes=[False, True],
            successful_fix="reboot_tier",
        )
        assert "oscillating_repair" not in classify(
            _result([retry]), [False] * 100
        )

    def test_slo_breach_after_heal_windowing(self):
        flags = [False] * 100
        flags[30] = True  # recovered_at=25 + window 25 covers tick 30
        result = _result([_report()])
        assert "slo_breach_after_heal" in classify(result, flags)
        late = [False] * 100
        late[60] = True  # beyond the window: not this heal's fault
        assert "slo_breach_after_heal" not in classify(result, late)

    def test_wrong_tier_root_cause(self):
        # A db-rooted fault healed by an app-tier fix that is not a
        # catalog candidate: root cause was misidentified.
        wrong = _report(
            fault_kinds=("hung_query",),
            fault_category="software",
            applications=[_application("microreboot_ejb", "ItemBean")],
            outcomes=[True],
            successful_fix="microreboot_ejb",
        )
        assert "wrong_tier_root_cause" in classify(
            _result([wrong]), [False] * 100
        )
        # The canonical fix is never wrong-tier.
        right = _report(
            fault_kinds=("hung_query",),
            applications=[_application("kill_hung_query", "hung-1")],
            outcomes=[True],
            successful_fix="kill_hung_query",
        )
        assert "wrong_tier_root_cause" not in classify(
            _result([right]), [False] * 100
        )

    def test_verdicts_come_out_in_severity_order(self):
        result = _result(
            [
                _report(admin_resolved=True),
                _report(
                    fault_kinds=("hung_query",),
                    successful_fix="microreboot_ejb",
                    applications=[_application("microreboot_ejb", "ItemBean")],
                ),
            ],
            injected=3,
            undetected=1,
        )
        verdicts = classify(result, [False] * 100)
        assert verdicts == tuple(v for v in VERDICTS if v in verdicts)
        assert verdicts[0] == "failed_repair"


class TestRunGenerated:
    def test_same_spec_same_fingerprint(self, rng):
        spec = make_spec([sample_fault_spec(rng, kind="deadlocked_threads")])
        a = run_generated(spec)
        b = run_generated(spec)
        assert a.fingerprint == b.fingerprint
        assert a.verdicts == b.verdicts

    def test_record_replay_roundtrip(self, rng, tmp_path):
        from repro.scenarios.runner import replay_campaign

        spec = make_spec([sample_fault_spec(rng, kind="unhandled_exception")])
        trace = str(tmp_path / "gen.jsonl")
        run = run_generated(spec, record_path=trace)
        assert run.trace_sha256 is not None
        replayed = replay_campaign(trace)
        assert fingerprint_result(replayed.result) == run.fingerprint


class TestShrinker:
    def test_reduces_known_bad_scenario_to_quarter(self):
        # Eight slots; only the mild load surge (never breaches the
        # SLO, so never detected) produces the missed_detection
        # verdict.  The minimizer must isolate it: <= 2 of 8 slots
        # (the 25% acceptance bound).
        filler = {"kind": "deadlocked_threads", "params": {"bean": "ItemBean"}}
        needle = {
            "kind": "load_surge",
            "params": {"factor": 1.05, "duration_ticks": 30},
        }
        slots = [dict(filler) for _ in range(8)]
        slots[5] = needle
        spec = make_spec(slots)
        result = shrink(spec, verdict="missed_detection")
        assert result.spec.n_episodes <= 2  # <= 25% of 8
        assert needle in [dict(s) for s in result.spec.fault_plan]
        assert (
            "missed_detection" in run_generated(result.spec).verdicts
        )

    def test_shrink_rejects_passing_spec(self, rng):
        spec = make_spec([sample_fault_spec(rng, kind="deadlocked_threads")])
        run = run_generated(spec)
        missing = next(v for v in VERDICTS if v not in run.verdicts)
        with pytest.raises(ValueError):
            shrink(spec, verdict=missing)


class TestCorpusPersistence:
    def _entry(self, tmp_path):
        needle = {
            "kind": "load_surge",
            "params": {"factor": 1.05, "duration_ticks": 30},
        }
        run = run_generated(make_spec([needle]))
        assert run.primary_verdict == "missed_detection"
        return _entry_from_run(run, found={"case": 0}, with_fleet=False)

    def test_save_load_replay(self, tmp_path):
        entry = self._entry(tmp_path)
        save_entry(str(tmp_path), entry)
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0].spec == entry.spec
        assert loaded[0].fingerprint == entry.fingerprint
        checks = replay_corpus(str(tmp_path))
        assert len(checks) == 1 and checks[0].ok

    def test_cli_gate_fails_on_drift(self, tmp_path, capsys):
        entry = self._entry(tmp_path)
        path = save_entry(str(tmp_path), entry)
        assert main(["scenario", "corpus", "run", "--dir", str(tmp_path)]) == 0
        payload = json.loads(Path(path).read_text())
        payload["fingerprint"] = "0" * 64
        Path(path).write_text(json.dumps(payload))
        assert main(["scenario", "corpus", "run", "--dir", str(tmp_path)]) == 1
        assert "fingerprint drift" in capsys.readouterr().out

    def test_cli_gate_fails_on_empty_corpus(self, tmp_path):
        assert (
            main(
                [
                    "scenario",
                    "corpus",
                    "run",
                    "--dir",
                    str(tmp_path / "nothing"),
                ]
            )
            == 1
        )


class TestFuzzCampaign:
    def test_fuzz_is_deterministic_and_dedupes(self, tmp_path):
        a = fuzz(
            budget=2,
            seed=123,
            out_dir=str(tmp_path / "a"),
            shrink_new=False,
            with_fleet=False,
        )
        b = fuzz(
            budget=2,
            seed=123,
            out_dir=str(tmp_path / "b"),
            shrink_new=False,
            with_fleet=False,
        )
        assert a.verdict_counts == b.verdict_counts
        assert [e.bucket for _, e in a.new_entries] == [
            e.bucket for _, e in b.new_entries
        ]
        assert [e.fingerprint for _, e in a.new_entries] == [
            e.fingerprint for _, e in b.new_entries
        ]
        # A second campaign against the same corpus finds nothing new.
        again = fuzz(
            budget=2,
            seed=123,
            corpus_dir=str(tmp_path / "a"),
            out_dir=str(tmp_path / "a"),
            shrink_new=False,
            with_fleet=False,
        )
        assert not again.new_entries
        assert again.skipped_known >= len(a.new_entries)


class TestCliExitCodes:
    def test_unknown_pack_exits_nonzero(self, capsys):
        assert main(["scenario", "run", "thundering_herd"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unknown scenario" in err

    def test_unknown_approach_exits_nonzero(self, capsys):
        assert (
            main(["scenario", "run", "diurnal", "--approach", "oracle"]) == 2
        )
        assert "unknown approach" in capsys.readouterr().err

    def test_missing_trace_exits_nonzero(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-trace.jsonl")
        assert main(["scenario", "replay", missing]) == 2
        assert "error:" in capsys.readouterr().err


@pytest.mark.skipif(
    not CORPUS_DIR.is_dir(), reason="committed corpus not present"
)
class TestCommittedCorpus:
    def test_corpus_is_populated_and_minimized(self):
        entries = load_corpus(str(CORPUS_DIR))
        assert len(entries) >= 10
        for entry in entries:
            assert entry.verdicts, entry.name
            assert entry.summary.get("slots", 99) <= 4, (
                f"{entry.name} is not minimized"
            )

    def test_corpus_replays_bit_exactly(self):
        # The tier-1 twin of the CI corpus-replay gate.  Fleet
        # fingerprints are checked by the dedicated test below so a
        # drift failure here points straight at the single-service
        # engine.
        checks = replay_corpus(str(CORPUS_DIR), check_fleet=False)
        bad = [f"{c.entry.name}: {c.details}" for c in checks if not c.ok]
        assert not bad, "corpus drift:\n" + "\n".join(bad)

    def test_one_fleet_entry_replays_bit_exactly(self):
        from repro.scenarios.corpus import _run_fleet, fingerprint_fleet

        entries = [
            e
            for e in load_corpus(str(CORPUS_DIR))
            if e.fleet_fingerprint is not None
        ]
        if not entries:
            pytest.skip("corpus has no multi-service entries")
        entry = entries[0]
        assert (
            fingerprint_fleet(_run_fleet(entry.spec))
            == entry.fleet_fingerprint
        )

    def test_fleet_entries_replay_bit_exactly_under_columnar(self):
        # The committed fleet fingerprints were pinned with the object
        # engine; the columnar engine must reproduce every one of them
        # byte-identically (the corpus doubles as a hard-case
        # differential set — each entry is a minimized reproducer of
        # some healing pathology).
        from repro.scenarios.corpus import _run_fleet, fingerprint_fleet

        entries = [
            e
            for e in load_corpus(str(CORPUS_DIR))
            if e.fleet_fingerprint is not None
        ]
        if not entries:
            pytest.skip("corpus has no multi-service entries")
        drifted = [
            entry.name
            for entry in entries
            if fingerprint_fleet(_run_fleet(entry.spec, engine="columnar"))
            != entry.fleet_fingerprint
        ]
        assert not drifted, f"columnar fleet drift: {drifted}"
