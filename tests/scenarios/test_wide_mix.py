"""Tests for the wide-mix pack: universe shape, determinism, batching.

The wide mix exists to push a *single* service's active query width
above the columnar batch crossover, so beyond the usual pack contracts
(deterministic schedules, record/replay) these tests pin the
engine-level consequences: the vectorized path engages without a
fleet, and stays bit-identical to the object reference when it does.
"""

from __future__ import annotations

import pytest

from repro.database.columnar import MIN_BATCH, install_columnar_engine
from repro.database.queries import rubis_query_templates
from repro.database.schema import rubis_schema
from repro.fleet.campaign import run_fleet_campaign
from repro.scenarios.corpus import fleet_payload
from repro.scenarios.packs import build_scenario_service, get_scenario
from repro.scenarios.wide import (
    WIDE_TEMPLATE_COUNT,
    wide_entry_points,
    wide_query_templates,
    wide_tiers,
)
from repro.simulator.config import ServiceConfig
from repro.simulator.ejb import rubis_entry_points


class TestWideUniverse:
    def test_universe_is_wide_and_unique(self):
        templates = wide_query_templates()
        assert len(templates) >= 128
        assert len(templates) >= MIN_BATCH * 2
        schema = rubis_schema()
        stock = rubis_query_templates()
        for name, template in templates.items():
            assert name == template.name
            assert name not in stock
            assert template.table in schema
            assert 0.0 < template.selectivity <= 1.0
            if template.indexed:
                # Big-table classes stay short: the tail loads the
                # engine by aggregate volume, not monster scans.
                assert template.selectivity < 1e-3
        # The tail carries writes too — statistics keep aging.
        writes = [t for t in templates.values() if t.is_write]
        assert len(writes) >= WIDE_TEMPLATE_COUNT // 10
        # And unindexed classes — the optimizer must full-scan some.
        assert any(not t.indexed for t in templates.values())

    def test_universe_is_deterministic(self):
        a = wide_query_templates()
        b = wide_query_templates()
        assert list(a) == list(b)
        assert a == b

    def test_blueprints_reference_known_templates(self):
        known = set(rubis_query_templates()) | set(wide_query_templates())
        for blueprint in wide_entry_points().values():
            assert set(blueprint.queries) <= known

    def test_blueprints_keep_stock_call_graph(self):
        stock = rubis_entry_points()
        widened = wide_entry_points()
        assert list(widened) == list(stock)
        for request_type, blueprint in widened.items():
            assert blueprint.edges == stock[request_type].edges
            # Stock query classes survive alongside the tail.
            for query, rate in stock[request_type].queries.items():
                assert blueprint.queries[query] == rate

    def test_every_template_is_dealt_to_a_blueprint(self):
        dealt: set[str] = set()
        for blueprint in wide_entry_points().values():
            dealt.update(blueprint.queries)
        assert set(wide_query_templates()) <= dealt


class TestWideMixPack:
    def test_registered_with_wide_tiers(self):
        pack = get_scenario("wide_mix")
        service = build_scenario_service(pack, ServiceConfig(seed=3))
        assert len(service.db.engine.templates) >= 128 + 14
        queries = set()
        for blueprint in service.app.container.blueprints.values():
            queries.update(blueprint.queries)
        assert len(queries) >= 128

    def test_tier_factory_honors_config_sizing(self):
        config = ServiceConfig(seed=1)
        _, engine = wide_tiers(config)
        assert engine.buffers.total_pages == config.db_buffer_pages
        assert engine.max_connections == config.db_max_connections

    def test_active_width_crosses_min_batch(self):
        pack = get_scenario("wide_mix")
        service = build_scenario_service(pack, ServiceConfig(seed=5))
        for _ in range(20):  # warm up past initial transients
            service.step()
        widths = []
        for _ in range(10):
            pending = service.begin_step()
            assert pending.snapshot is None
            widths.append(
                sum(1 for c in pending.query_counts.values() if c > 0)
            )
            service.finish_step(pending)
        assert min(widths) >= MIN_BATCH

    def test_single_service_columnar_is_bit_exact(self):
        pack = get_scenario("wide_mix")
        reference = build_scenario_service(pack, ServiceConfig(seed=11))
        columnar = build_scenario_service(pack, ServiceConfig(seed=11))
        accelerator = install_columnar_engine(columnar.db.engine)
        vector_ticks = 0
        for tick in range(200):
            a = reference.step()
            b = columnar.step()
            assert a.latency_ms == b.latency_ms, f"tick {tick}"
            assert a.db_mean_service_ms == b.db_mean_service_ms
            assert a.plan_regret_ms == b.plan_regret_ms
            assert a.index_scans == b.index_scans
            assert a.full_scans == b.full_scans
            assert a.lock_wait_ms == b.lock_wait_ms
            assert a.stats_staleness == b.stats_staleness
            if accelerator.regular_tick():
                vector_ticks += 1
        # The whole point of the pack: one member's width batches.
        assert vector_ticks > 0

    def test_schedule_is_deterministic(self):
        pack = get_scenario("wide_mix")
        a = pack.build_faults(21, 8)
        b = pack.build_faults(21, 8)
        assert [f.kind for f in a] == [f.kind for f in b]
        kinds = {f.kind for f in a}
        assert kinds <= {
            "stale_statistics",
            "buffer_contention",
            "table_contention",
            "hung_query",
        }


class TestWideMixFleet:
    def test_two_engine_fleet_equivalence(self):
        shape = dict(
            n_services=2,
            episodes_per_service=1,
            seed=13,
            workers=1,
            scenario="wide_mix",
        )
        columnar = run_fleet_campaign(engine="columnar", **shape)
        reference = run_fleet_campaign(engine="object", **shape)
        assert fleet_payload(columnar) == fleet_payload(reference)
        # Wide members fuse and batch even at n_services=2: each
        # member alone is wider than the crossover.
        fused = columnar.transport["fused"]
        assert fused["fused_members"] == 2
        assert fused["fallback_members"] == 0
        assert fused["narrow_members"] == 0
        assert fused["batched_engine_ticks"] > 0

    def test_record_replay_round_trip(self, tmp_path):
        from repro.scenarios.runner import replay_campaign, run_scenario

        trace = str(tmp_path / "wide.jsonl")
        run = run_scenario(
            "wide_mix", seed=9, n_episodes=2, record_path=trace
        )
        replayed = replay_campaign(trace)
        assert replayed.result.injected == run.result.injected
        assert replayed.result.undetected == run.result.undetected
        assert len(replayed.result.reports) == len(run.result.reports)
        for a, b in zip(run.result.reports, replayed.result.reports):
            assert a.detected_at == b.detected_at
            assert a.recovered_at == b.recovered_at
            assert a.successful_fix == b.successful_fix

    def test_deterministic_trace_hash(self, tmp_path):
        from repro.scenarios.runner import run_scenario

        hashes = []
        for name in ("a.jsonl", "b.jsonl"):
            run = run_scenario(
                "wide_mix",
                seed=9,
                n_episodes=2,
                record_path=str(tmp_path / name),
            )
            hashes.append(run.trace_sha256)
        assert hashes[0] == hashes[1]
