"""Tests for the composed multitier service."""

import numpy as np
import pytest

from repro.simulator.config import ServiceConfig
from repro.simulator.service import DOWNTIME_TICKS, MultitierService, TIMEOUT_MS
from repro.simulator.slo import SLO, SLOMonitor


class TestBaseline:
    def test_healthy_within_slo(self, warm_service):
        snapshots = warm_service.run(20)
        latencies = [s.latency_ms for s in snapshots]
        assert max(latencies) < warm_service.slo.latency_ms
        assert all(s.error_rate == 0.0 for s in snapshots)
        assert not snapshots[-1].slo_violated

    def test_utilizations_have_headroom(self, warm_service):
        snapshot = warm_service.run(5)[-1]
        for utilization in (
            snapshot.web_utilization,
            snapshot.app_utilization,
            snapshot.db_utilization,
        ):
            assert 0.01 < utilization < 0.6

    def test_snapshot_carries_call_matrix(self, warm_service):
        snapshot = warm_service.run(1)[0]
        assert snapshot.call_matrix is not None
        assert snapshot.caller_names[0] == "__servlet__"
        assert len(snapshot.callee_names) == 9

    def test_deterministic_given_seed(self):
        a = MultitierService(ServiceConfig(seed=5)).run(10)
        b = MultitierService(ServiceConfig(seed=5)).run(10)
        assert [s.latency_ms for s in a] == [s.latency_ms for s in b]


class TestDowntime:
    def test_restart_makes_service_unavailable(self, warm_service):
        warm_service.restart_service()
        snapshots = warm_service.run(DOWNTIME_TICKS["restart_service"])
        assert all(not s.available for s in snapshots)
        assert all(s.error_rate == 1.0 for s in snapshots if s.total_requests)
        assert warm_service.run(1)[0].available

    def test_downtime_latency_is_timeout(self, warm_service):
        warm_service.reboot_tier("app")
        snapshot = warm_service.run(1)[0]
        assert snapshot.latency_ms == TIMEOUT_MS

    def test_microreboot_has_no_global_downtime(self, warm_service):
        warm_service.microreboot_ejb("ItemBean")
        assert warm_service.run(1)[0].available


class TestRecoveryMechanisms:
    def test_provision_unknown_tier_rejected(self, warm_service):
        with pytest.raises(ValueError):
            warm_service.provision_tier("cache")

    def test_reboot_unknown_tier_rejected(self, warm_service):
        with pytest.raises(ValueError):
            warm_service.reboot_tier("cache")

    def test_provision_defaults_to_doubling(self, warm_service):
        before = warm_service.app.capacity
        assert warm_service.provision_tier("app") == 2 * before

    def test_update_statistics_delegates(self, warm_service):
        warm_service.db.engine.statistics.statistics_for(
            "bids"
        ).recorded_skew["item_id"] = 99.0
        warm_service.update_statistics()
        stats = warm_service.db.engine.statistics.statistics_for("bids")
        assert stats.estimated_skew("item_id") == 1.0

    def test_notify_administrator_records(self, warm_service):
        warm_service.notify_administrator("paging: everything is on fire")
        assert warm_service.admin_notifications


class TestConfigRollback:
    def test_rollback_restores_capacities(self, warm_service):
        warm_service.app.capacity = 1
        warm_service.web.capacity = 1
        warm_service.app.heap_mb = 128.0
        warm_service.rollback_config()
        assert warm_service.app.capacity == ServiceConfig().app_threads
        assert warm_service.web.capacity == ServiceConfig().web_workers
        assert warm_service.app.heap_mb == ServiceConfig().heap_mb

    def test_rollback_restores_buffer_shares(self, warm_service):
        warm_service.db.engine.buffers.set_shares(
            {"data": 0.1, "index": 0.1, "log": 0.8}
        )
        warm_service.rollback_config()
        data_pages = warm_service.db.engine.buffers.pool("data").pages
        assert data_pages == pytest.approx(
            0.70 * warm_service.db.engine.buffers.total_pages, rel=0.01
        )

    def test_commit_moves_the_baseline(self, warm_service):
        warm_service.app.capacity = 32
        warm_service.commit_config_baseline()
        warm_service.app.capacity = 1
        warm_service.rollback_config()
        assert warm_service.app.capacity == 32

    def test_config_change_telemetry_window(self, warm_service):
        assert warm_service.run(1)[0].recent_config_change == 0.0
        warm_service.note_config_change()
        assert warm_service.run(1)[0].recent_config_change == 1.0
        warm_service.run(warm_service.config_change_window + 2)
        assert warm_service.last_snapshot.recent_config_change == 0.0


class TestSLOMonitor:
    def test_windowed_violation(self):
        monitor = SLOMonitor(SLO(latency_ms=100.0, error_rate=0.05,
                                 window_ticks=4))
        for _ in range(4):
            monitor.observe(50.0, 0.0)
        assert not monitor.violated
        monitor.observe(1000.0, 0.0)  # one huge tick lifts the mean
        assert monitor.violated

    def test_error_rate_violation(self):
        monitor = SLOMonitor(SLO(latency_ms=100.0, error_rate=0.05,
                                 window_ticks=2))
        monitor.observe(10.0, 0.5)
        monitor.observe(10.0, 0.5)
        assert monitor.violated

    def test_reset(self):
        monitor = SLOMonitor(SLO(window_ticks=3))
        monitor.observe(9999.0, 1.0)
        monitor.reset()
        assert not monitor.violated

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(latency_ms=0.0)
        with pytest.raises(ValueError):
            SLO(error_rate=1.5)
        with pytest.raises(ValueError):
            SLO(window_ticks=0)


class TestRollingReboot:
    def test_no_outage_but_reduced_capacity(self, warm_service):
        warm_service.rolling_reboot_tier("app", degraded_ticks=5)
        snapshots = warm_service.run(5)
        assert all(s.available for s in snapshots)
        # Utilization roughly doubles while half the workers recycle.
        assert snapshots[0].app_utilization > 0.4

    def test_app_rolling_reclaims_heap(self, warm_service):
        warm_service.app.heap_used_mb = 950.0
        warm_service.rolling_reboot_tier("app")
        assert warm_service.app.heap_fraction == pytest.approx(0.30)

    def test_unknown_tier_rejected(self, warm_service):
        with pytest.raises(ValueError):
            warm_service.rolling_reboot_tier("cache")
