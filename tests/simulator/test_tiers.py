"""Tests for the queueing tiers."""

import numpy as np
import pytest

from repro.simulator.ejb import EJBContainer
from repro.simulator.tiers.base import QueueingTier
from repro.simulator.tiers.app import AppTier
from repro.simulator.tiers.web import WebTier


class TestQueueingTier:
    def test_idle_tier(self):
        tier = QueueingTier("t", 4)
        result = tier.queueing(0.0, 10.0)
        assert result.utilization == 0.0
        assert result.shed_requests == 0

    def test_response_grows_with_load(self):
        tier = QueueingTier("t", 4)
        light = tier.queueing(50.0, 10.0)
        heavy = tier.queueing(350.0, 10.0)
        assert heavy.utilization > light.utilization
        assert heavy.response_ms > light.response_ms

    def test_saturation_sheds(self):
        tier = QueueingTier("t", 2)
        result = tier.queueing(1000.0, 10.0)  # demands 10 servers
        assert result.shed_requests > 0
        assert result.utilization == pytest.approx(0.97)

    def test_capacity_factor_degrades(self):
        tier = QueueingTier("t", 8)
        healthy = tier.queueing(300.0, 10.0)
        tier.capacity_factor = 0.25
        degraded = tier.queueing(300.0, 10.0)
        assert degraded.utilization > healthy.utilization

    def test_provision_adds_capacity(self):
        tier = QueueingTier("t", 4)
        assert tier.provision(4) == 8
        with pytest.raises(ValueError):
            tier.provision(0)

    def test_delay_factor(self):
        tier = QueueingTier("t", 2)
        result = tier.queueing(150.0, 10.0)
        assert result.delay_factor >= 1.0
        assert result.delay_factor == pytest.approx(
            result.response_ms / result.service_ms
        )

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QueueingTier("t", 0)


class TestWebTier:
    def test_process_near_nominal_service(self, rng):
        web = WebTier(4, 2.0, rng)
        result = web.process(100.0)
        assert result.response_ms == pytest.approx(2.0, rel=0.5)

    def test_invalid_service_time(self, rng):
        with pytest.raises(ValueError):
            WebTier(2, 0.0, rng)


class TestAppTier:
    def _tier(self, seed=0):
        return AppTier(8, 1024.0, np.random.default_rng(seed), EJBContainer())

    def test_gc_overhead_at_baseline_is_unity(self):
        tier = self._tier()
        assert tier.gc_overhead() == pytest.approx(1.0)

    def test_gc_overhead_grows_and_saturates(self):
        tier = self._tier()
        tier.heap_used_mb = 0.85 * tier.heap_mb
        mid = tier.gc_overhead()
        tier.heap_used_mb = 0.99 * tier.heap_mb
        high = tier.gc_overhead()
        assert 1.0 < mid < high <= AppTier.MAX_GC_OVERHEAD

    def test_leak_fills_heap(self):
        tier = self._tier()
        tier.leak_mb_per_tick = 50.0
        for _ in range(20):
            tier.process({"ViewItem": 10}, 10.0)
        assert tier.heap_fraction > 0.9

    def test_oom_errors_near_exhaustion(self):
        tier = self._tier(seed=3)
        tier.heap_used_mb = tier.heap_mb * 0.999
        result = tier.process({"ViewItem": 200}, 200.0)
        assert result.oom_errors > 0

    def test_deadlock_pins_threads(self):
        tier = self._tier()
        tier.container.set_deadlocked("ItemBean")
        for _ in range(5):
            tier.process({"ViewItem": 20}, 20.0)
        assert tier.threads_stuck > 0
        assert tier.effective_capacity < tier.capacity

    def test_stuck_threads_recover_after_unwedge(self):
        tier = self._tier()
        tier.container.set_deadlocked("ItemBean")
        for _ in range(5):
            tier.process({"ViewItem": 20}, 20.0)
        tier.container.microreboot("ItemBean")
        for _ in range(10):
            tier.process({"ViewItem": 20}, 20.0)
        assert tier.threads_stuck == 0.0

    def test_reboot_resets_heap_and_threads(self):
        tier = self._tier()
        tier.heap_used_mb = 900.0
        tier.threads_stuck = 5.0
        tier.reboot()
        assert tier.heap_fraction == pytest.approx(0.30)
        assert tier.threads_stuck == 0.0
        assert tier.reboot_count == 1

    def test_invalid_heap(self):
        with pytest.raises(ValueError):
            AppTier(4, 0.0, np.random.default_rng(0))


class TestRollingRestart:
    def test_halves_capacity_while_active(self):
        tier = QueueingTier("t", 8)
        tier.begin_rolling_restart(degraded_ticks=3)
        assert tier.effective_capacity == pytest.approx(4.0)
        for _ in range(3):
            tier.tick_rolling()
        assert tier.effective_capacity == pytest.approx(8.0)

    def test_counts_as_reboot(self):
        tier = QueueingTier("t", 4)
        tier.begin_rolling_restart()
        assert tier.reboot_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueingTier("t", 4).begin_rolling_restart(0)
