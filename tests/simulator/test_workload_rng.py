"""Tests for workload generation and RNG derivation."""

import numpy as np
import pytest

from repro.simulator.rng import derive_rng
from repro.simulator.workload import (
    REQUEST_TYPES,
    Workload,
    WorkloadProfile,
    bidding_profile,
    browsing_profile,
)


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(7, "workload").normal(size=5)
        b = derive_rng(7, "workload").normal(size=5)
        assert np.array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = derive_rng(7, "workload").normal(size=5)
        b = derive_rng(7, "web").normal(size=5)
        assert not np.array_equal(a, b)

    def test_integer_keys(self):
        a = derive_rng(7, "episode", 3).normal()
        b = derive_rng(7, "episode", 4).normal()
        assert a != b


class TestProfiles:
    def test_builtin_profiles_are_valid(self):
        for profile in (browsing_profile(), bidding_profile()):
            assert sum(profile.mix.values()) == pytest.approx(1.0)
            assert set(profile.mix) <= set(REQUEST_TYPES)

    def test_browsing_profile_is_read_only(self):
        profile = browsing_profile()
        for write_type in ("PlaceBid", "BuyNow", "Sell", "RegisterUser"):
            assert profile.probability(write_type) == 0.0

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", {"Home": 0.5})  # doesn't sum to 1
        with pytest.raises(ValueError):
            WorkloadProfile("bad", {"NotARequest": 1.0})


class TestWorkload:
    def test_constant_rate(self, rng):
        workload = Workload(bidding_profile(), 100.0, rng)
        assert workload.rate_at(0) == workload.rate_at(500) == 100.0

    def test_diurnal_rate_oscillates(self, rng):
        workload = Workload(
            bidding_profile(), 100.0, rng, pattern="diurnal"
        )
        quarter = int(Workload.DIURNAL_PERIOD_TICKS // 4)
        assert workload.rate_at(quarter) == pytest.approx(150.0)
        assert workload.rate_at(3 * quarter) == pytest.approx(50.0)

    def test_surge_window(self, rng):
        workload = Workload(
            bidding_profile(), 100.0, rng,
            pattern="surge", surge_start=10, surge_end=20, surge_factor=3.0,
        )
        assert workload.rate_at(5) == 100.0
        assert workload.rate_at(15) == 300.0
        assert workload.rate_at(25) == 100.0

    def test_rate_multiplier_hook(self, rng):
        workload = Workload(bidding_profile(), 100.0, rng)
        workload.rate_multiplier = 4.0
        assert workload.rate_at(0) == 400.0

    def test_sampled_counts_match_mix(self):
        workload = Workload(
            bidding_profile(), 200.0, np.random.default_rng(3)
        )
        totals: dict[str, int] = {}
        for tick in range(300):
            for request_type, count in workload.requests_at(tick).items():
                totals[request_type] = totals.get(request_type, 0) + count
        grand = sum(totals.values())
        view_share = totals["ViewItem"] / grand
        assert view_share == pytest.approx(0.26, abs=0.02)

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            Workload(bidding_profile(), 0.0, rng)
        with pytest.raises(ValueError):
            Workload(bidding_profile(), 1.0, rng, pattern="square")
