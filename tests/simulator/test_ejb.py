"""Tests for the EJB container and call-graph blueprints."""

import numpy as np
import pytest

from repro.simulator.ejb import (
    EJBContainer,
    SERVLET,
    rubis_ejbs,
    rubis_entry_points,
)


@pytest.fixture
def container():
    return EJBContainer()


@pytest.fixture
def counts():
    return {"ViewItem": 50, "PlaceBid": 20, "SearchItemsByCategory": 30}


class TestBlueprints:
    def test_all_request_types_have_blueprints(self):
        blueprints = rubis_entry_points()
        from repro.simulator.workload import REQUEST_TYPES

        assert set(blueprints) == set(REQUEST_TYPES)

    def test_edges_reference_known_beans(self):
        beans = set(rubis_ejbs())
        for blueprint in rubis_entry_points().values():
            for caller, callee in blueprint.edges:
                assert caller == SERVLET or caller in beans
                assert callee in beans

    def test_queries_reference_known_templates(self):
        from repro.database.queries import rubis_query_templates

        templates = set(rubis_query_templates())
        for blueprint in rubis_entry_points().values():
            assert set(blueprint.queries) <= templates

    def test_invocations_sum_in_edges(self):
        blueprint = rubis_entry_points()["ViewBidHistory"]
        invocations = blueprint.invocations()
        assert invocations["UserBean"] == pytest.approx(2.0)
        assert invocations["BidBean"] == pytest.approx(1.0)


class TestHealthyProcessing:
    def test_call_matrix_shape_and_mass(self, container, counts, rng):
        result = container.process(counts, rng)
        assert result.call_matrix.shape == (
            len(container.caller_names),
            len(container.bean_names),
        )
        assert result.call_matrix.sum() > 0
        assert result.errors_per_type == {
            "ViewItem": 0, "PlaceBid": 0, "SearchItemsByCategory": 0,
        }
        assert result.hang_requests == 0

    def test_query_mix_follows_blueprints(self, container, counts, rng):
        result = container.process(counts, rng)
        # ViewItem + PlaceBid both read items by id.
        assert result.query_counts["select_item_by_id"] == 70
        assert result.query_counts["insert_bid"] == 20

    def test_zero_counts_skipped(self, container, rng):
        result = container.process({"ViewItem": 0}, rng)
        assert result.call_matrix.sum() == 0


class TestDeadlock:
    def test_wedged_bean_stops_outbound_calls(self, container, counts, rng):
        container.set_deadlocked("ItemBean")
        result = container.process(counts, rng)
        item_row = container.caller_names.index("ItemBean")
        assert result.call_matrix[item_row].sum() == 0

    def test_requests_through_wedged_bean_hang(self, container, counts, rng):
        container.set_deadlocked("ItemBean")
        result = container.process(counts, rng)
        assert result.hang_requests > 0
        assert result.errors_per_type["ViewItem"] > 0

    def test_microreboot_unwedges(self, container, counts, rng):
        container.set_deadlocked("ItemBean")
        container.microreboot("ItemBean")
        result = container.process(counts, rng)
        assert result.hang_requests == 0
        assert container.microreboot_count == 1


class TestExceptions:
    def test_exception_rate_produces_errors(self, container, counts):
        container.set_exception_rate("BidBean", 0.5)
        rng = np.random.default_rng(5)
        result = container.process(counts, rng)
        # PlaceBid enters through BidBean; about half should fail.
        assert result.errors_per_type["PlaceBid"] > 0

    def test_exception_aborts_downstream_calls(self, container, counts):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        healthy = container.process(counts, rng1)
        container.set_exception_rate("BidBean", 0.6)
        faulty = container.process(counts, rng2)
        bid_row = container.caller_names.index("BidBean")
        assert faulty.call_matrix[bid_row].sum() < healthy.call_matrix[
            bid_row
        ].sum() * 0.7

    def test_zero_rate_clears(self, container):
        container.set_exception_rate("BidBean", 0.5)
        container.set_exception_rate("BidBean", 0.0)
        assert "BidBean" not in container.exception_rates

    def test_bug_error_rate_is_bean_agnostic(self, container, counts, rng):
        container.bug_error_rate = 0.3
        result = container.process(counts, rng)
        assert sum(result.errors_per_type.values()) > 0
        # The call matrix keeps its shape: no single bean implicated.
        for bean in container.bean_names:
            row = container.caller_names.index(bean)
            assert result.call_matrix[row].sum() >= 0


class TestValidation:
    def test_unknown_bean_rejected(self, container):
        with pytest.raises(KeyError):
            container.set_deadlocked("NopeBean")
        with pytest.raises(KeyError):
            container.microreboot("NopeBean")
        with pytest.raises(ValueError):
            container.set_exception_rate("BidBean", 1.5)

    def test_reboot_clears_transients_not_bug(self, container):
        container.set_deadlocked("ItemBean")
        container.set_exception_rate("BidBean", 0.5)
        container.bug_error_rate = 0.2
        container.reboot()
        assert not container.deadlocked
        assert not container.exception_rates
        # A code bug survives restarts (Table 1 pairs it with notify).
        assert container.bug_error_rate == 0.2
