"""Tests for the end-to-end self-healing loop."""

import pytest

from repro.core.approaches.bottleneck import BottleneckAnalysisApproach
from repro.core.approaches.manual import ManualRuleBased, Rule
from repro.core.approaches.signature import SignatureApproach
from repro.core.synopses import NearestNeighborSynopsis
from repro.faults.app_faults import DeadlockedThreadsFault
from repro.faults.db_faults import StaleStatisticsFault
from repro.faults.infra_faults import TierCapacityLossFault
from repro.faults.injector import FaultInjector
from repro.fixes.catalog import ALL_FIX_KINDS
from repro.healing.loop import SelfHealingLoop
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService


def _loop(approach, seed=11, threshold=5):
    service = MultitierService(ServiceConfig(seed=seed))
    injector = FaultInjector(service)
    loop = SelfHealingLoop(
        service, approach, injector=injector, threshold=threshold, seed=seed
    )
    loop.warmup()
    return service, injector, loop


class TestHealing:
    def test_bottleneck_approach_heals_capacity_loss(self):
        service, injector, loop = _loop(BottleneckAnalysisApproach())
        injector.inject(TierCapacityLossFault("app"), service.tick)
        reports = loop.run(250)
        assert len(reports) == 1
        report = reports[0]
        assert report.recovered
        assert not report.escalated
        assert report.successful_fix == "provision_tier"
        assert report.fault_kinds == ("tier_capacity_loss",)
        assert report.detection_ticks >= 0
        assert report.repair_ticks > 0

    def test_signature_approach_learns_across_episodes(self):
        approach = SignatureApproach(NearestNeighborSynopsis(ALL_FIX_KINDS))
        service, injector, loop = _loop(approach)
        injector.inject(DeadlockedThreadsFault("ItemBean"), service.tick)
        first = loop.run(400)[0]
        assert first.recovered
        samples_after_first = approach.synopsis.n_samples
        assert samples_after_first >= 1

        injector.inject(DeadlockedThreadsFault("ItemBean"), service.tick)
        second = loop.run(400)[0]
        assert second.recovered
        # The recurrence should need no more attempts than first time.
        assert second.attempts <= first.attempts

    def test_escalation_path_reaches_admin(self):
        # Rules that recommend only a useless fix for stale statistics:
        # the loop must walk Figure 3's lines 18-20.
        rules = [Rule("useless", lambda e: True, "kill_hung_query")]
        service, injector, loop = _loop(
            ManualRuleBased(rules), threshold=2
        )
        injector.inject(StaleStatisticsFault(), service.tick)
        reports = loop.run(200)
        assert len(reports) == 1
        report = reports[0]
        assert report.escalated
        # Restart was tried (line 19) but statistics survive restarts,
        # so the administrator had to finish it.
        assert report.admin_resolved
        assert report.recovered
        assert "notify_admin" in [a.kind for a in report.applications]
        assert not injector.any_active

    def test_report_phases_are_consistent(self):
        service, injector, loop = _loop(BottleneckAnalysisApproach())
        injector.inject(TierCapacityLossFault("db"), service.tick)
        report = loop.run(250)[0]
        assert report.injected_at <= report.detected_at
        assert report.detected_at <= report.recovered_at
        assert report.recovery_ticks == (
            report.detection_ticks + report.repair_ticks
        )


class TestLoopValidation:
    def test_threshold_validated(self):
        service = MultitierService(ServiceConfig(seed=1))
        with pytest.raises(ValueError):
            SelfHealingLoop(service, BottleneckAnalysisApproach(), threshold=0)

    def test_warmup_required_amount(self):
        service, injector, loop = _loop(BottleneckAnalysisApproach())
        assert loop.harness.baseline.ready


class TestAttemptLedger:
    """The retry-bookkeeping piece shared with the live loop."""

    def test_fresh_ledger_allows_everything(self):
        from repro.healing.loop import AttemptLedger

        ledger = AttemptLedger()
        assert ledger.allows("restart_service")
        assert ledger.excluded == set()

    def test_repeat_failure_on_same_target_excludes_the_kind(self):
        from repro.healing.loop import AttemptLedger

        ledger = AttemptLedger()
        ledger.note("restart_service", "db", fixed=False)
        assert ledger.allows("restart_service")
        ledger.note("restart_service", "db", fixed=False)
        assert not ledger.allows("restart_service")

    def test_new_target_keeps_the_kind_available(self):
        from repro.healing.loop import AttemptLedger

        ledger = AttemptLedger()
        ledger.note("restart_service", "db:100", fixed=False)
        ledger.note("restart_service", "db:200", fixed=False)
        assert ledger.allows("restart_service")

    def test_success_never_excludes(self):
        from repro.healing.loop import AttemptLedger

        ledger = AttemptLedger()
        ledger.note("clear_cache", "db", fixed=False)
        ledger.note("clear_cache", "db", fixed=True)
        assert ledger.allows("clear_cache")
