"""Tests for forecast-driven proactive healing."""

import pytest

from repro.core.forecasting import TrendForecaster
from repro.faults.app_faults import SoftwareAgingFault
from repro.faults.injector import FaultInjector
from repro.healing.proactive import ProactiveHealer, Watch
from repro.simulator.config import ServiceConfig
from repro.simulator.service import MultitierService


@pytest.fixture
def aging_setup():
    service = MultitierService(ServiceConfig(seed=23))
    injector = FaultInjector(service)
    service.run(140)
    # A realistic slow leak: ~240 ticks of headroom before the heap
    # watch threshold, ~270 before the SLO actually breaks.
    injector.inject(
        SoftwareAgingFault(2.5, chronic=True), service.tick
    )
    return service, injector


class TestProactiveHealer:
    def test_acts_before_slo_breaks(self, aging_setup):
        service, injector = aging_setup
        healer = ProactiveHealer(service, injector=injector)
        report = healer.run(500)
        assert len(report.actions) >= 1
        first_action_tick = report.actions[0][0]
        # The only violation ticks allowed are the planned-reboot
        # downtime blips, never a full aging collapse.
        assert report.violation_ticks < 40
        assert first_action_tick > 0
        assert all(lead >= 0 for lead in report.forecast_lead_ticks)

    def test_cooldown_prevents_reboot_storm(self, aging_setup):
        service, injector = aging_setup
        healer = ProactiveHealer(
            service, injector=injector, cooldown_ticks=300
        )
        report = healer.run(600)
        ticks = [tick for tick, _, _ in report.actions]
        assert all(b - a >= 300 for a, b in zip(ticks, ticks[1:]))

    def test_healthy_service_never_acted_on(self):
        service = MultitierService(ServiceConfig(seed=23))
        service.run(140)
        healer = ProactiveHealer(service)
        report = healer.run(400)
        assert report.actions == []
        assert report.availability == 1.0

    def test_custom_watch(self, aging_setup):
        service, injector = aging_setup
        watch = Watch(
            metric="app.heap_used_mb",
            threshold=0.80 * service.app.heap_mb,
            rising=True,
            fix_kind="reboot_tier",
            target="app",
            horizon_ticks=80.0,
        )
        healer = ProactiveHealer(
            service,
            injector=injector,
            watches=[watch],
            forecaster=TrendForecaster(window=40, min_r2=0.5),
        )
        report = healer.run(500)
        assert report.actions
        assert all(
            metric == "app.heap_used_mb" for _, _, metric in report.actions
        )
