"""Property tests: episode/fix records round-trip JSON exactly.

``episode_end`` telemetry events embed ``EpisodeReport.to_dict()``
verbatim, and the ``repro report`` renderer reconstructs reports with
``from_dict`` — so the pair must be an exact inverse over the whole
value space, including a trip through actual JSON text (which is what
the JSONL file stores).
"""

from __future__ import annotations

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.fixes.base import FixApplication
from repro.healing.report import EpisodeReport

_names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    max_size=20,
)

applications = st.builds(
    FixApplication,
    kind=_names,
    target=st.one_of(st.none(), _names),
    cost_ticks=st.integers(min_value=0, max_value=10_000),
    detail=_names,
)


@st.composite
def episode_reports(draw):
    n_apps = draw(st.integers(min_value=0, max_value=4))
    apps = [draw(applications) for _ in range(n_apps)]
    injected = draw(st.integers(min_value=0, max_value=10**6))
    detected = injected + draw(st.integers(min_value=0, max_value=10**4))
    recovered = draw(
        st.one_of(
            st.none(),
            st.integers(min_value=detected, max_value=detected + 10**4),
        )
    )
    return EpisodeReport(
        event_id=draw(st.integers(min_value=0, max_value=10**6)),
        fault_kinds=tuple(draw(st.lists(_names, max_size=3))),
        fault_category=draw(_names),
        injected_at=injected,
        detected_at=detected,
        recovered_at=recovered,
        applications=apps,
        outcomes=[draw(st.booleans()) for _ in range(n_apps)],
        successful_fix=draw(st.one_of(st.none(), _names)),
        escalated=draw(st.booleans()),
        admin_resolved=draw(st.booleans()),
    )


@given(applications)
def test_fix_application_round_trips_exactly(app):
    payload = json.loads(json.dumps(app.to_dict()))
    assert FixApplication.from_dict(payload) == app


@given(episode_reports())
def test_episode_report_round_trips_exactly(report):
    payload = json.loads(json.dumps(report.to_dict()))
    rebuilt = EpisodeReport.from_dict(payload)
    assert rebuilt == report
    # And the dict itself is a fixed point (stable wire schema).
    assert rebuilt.to_dict() == report.to_dict()
