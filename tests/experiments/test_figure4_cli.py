"""Tests for the Figure 4 harness plumbing and the CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.figure4 import PAPER_REFERENCE, SynopsisCurve


class TestSynopsisCurve:
    def test_accuracy_at_steps(self):
        curve = SynopsisCurve("nn", points=[(10, 0.5), (20, 0.7), (50, 0.9)])
        assert curve.accuracy_at(5) == 0.0
        assert curve.accuracy_at(10) == 0.5
        assert curve.accuracy_at(35) == 0.7
        assert curve.accuracy_at(500) == 0.9

    def test_fixes_to_reach(self):
        curve = SynopsisCurve("nn", points=[(10, 0.5), (20, 0.96)])
        assert curve.fixes_to_reach(0.95) == 20
        assert curve.fixes_to_reach(0.99) is None

    def test_paper_reference_complete(self):
        for name in ("adaboost", "nearest_neighbor", "kmeans"):
            assert "time_50_s" in PAPER_REFERENCE[name]
            assert "acc_50" in PAPER_REFERENCE[name]


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out
        assert "table1" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9000"])


class TestOnlineDrift:
    def test_small_drift_run(self):
        from repro.experiments.online_drift import (
            format_drift,
            run_online_drift,
        )

        result = run_online_drift(pre_episodes=12, post_episodes=12, seed=9)
        assert set(result.pre_accuracy) == {"frozen", "online", "drift-reset"}
        assert all(0.0 <= v <= 1.0 for v in result.post_accuracy.values())
        text = format_drift(result)
        assert "frozen" in text and "online" in text
