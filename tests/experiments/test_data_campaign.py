"""Tests for the dataset generator and injection campaigns."""

import numpy as np
import pytest

from repro.core.approaches.bottleneck import BottleneckAnalysisApproach
from repro.experiments.campaign import run_campaign
from repro.experiments.data import (
    FailureEpisodeGenerator,
    generate_failure_dataset,
)
from repro.faults.catalog import catalog_entry
from repro.fixes.catalog import ALL_FIX_KINDS


class TestEpisodeGenerator:
    def test_episodes_have_valid_labels(self):
        generator = FailureEpisodeGenerator(seed=31)
        for _ in range(6):
            symptoms, label, kind = generator.next_episode()
            assert label in ALL_FIX_KINDS
            assert symptoms.shape == (generator.n_features,)
            assert np.all(np.isfinite(symptoms))
            # The label is the catalogued canonical fix of the fault.
            assert label == catalog_entry(kind).candidate_fixes[0]

    def test_feature_names_align(self):
        generator = FailureEpisodeGenerator(seed=31)
        generator.next_episode()
        names = generator.feature_names
        assert len(names) == generator.n_features
        assert names[0].startswith("z.")

    def test_deterministic_given_seed(self):
        a = FailureEpisodeGenerator(seed=77)
        b = FailureEpisodeGenerator(seed=77)
        sa, la, ka = a.next_episode()
        sb, lb, kb = b.next_episode()
        assert ka == kb and la == lb
        assert np.allclose(sa, sb)

    def test_restricted_fault_pool(self):
        generator = FailureEpisodeGenerator(
            seed=5, fault_kinds=("network_fault",)
        )
        _, label, kind = generator.next_episode()
        assert kind == "network_fault"
        assert label == "failover_network"

    def test_dataset_materialization(self):
        dataset, kinds = generate_failure_dataset(8, seed=13)
        assert dataset.n_samples == 8
        assert len(kinds) == 8
        assert set(dataset.labels) <= set(ALL_FIX_KINDS)


class TestCampaign:
    def test_campaign_produces_reports(self):
        campaign = run_campaign(
            approach=BottleneckAnalysisApproach(),
            n_episodes=4,
            seed=41,
            category_mix={"hardware": 0.5, "software": 0.5},
        )
        assert len(campaign.reports) == 4
        for report in campaign.reports:
            assert report.fault_category in ("hardware", "software")
            assert report.attempts >= 0

    def test_explicit_fault_schedule(self):
        from repro.faults.infra_faults import TierCapacityLossFault

        campaign = run_campaign(
            approach=BottleneckAnalysisApproach(),
            n_episodes=2,
            seed=42,
            faults=[
                TierCapacityLossFault("app"),
                TierCapacityLossFault("web"),
            ],
        )
        assert len(campaign.reports) == 2
        assert all(
            r.fault_kinds == ("tier_capacity_loss",)
            for r in campaign.reports
        )
        assert all(not r.escalated for r in campaign.reports)

    def test_by_category_grouping(self):
        campaign = run_campaign(
            approach=BottleneckAnalysisApproach(),
            n_episodes=3,
            seed=43,
            category_mix={"network": 1.0},
        )
        grouped = campaign.by_category()
        assert set(grouped) == {"network"}
        assert len(grouped["network"]) == 3

    def test_schedule_exhaustion_stops_campaign(self):
        # Asking for more episodes than the explicit schedule holds
        # must stop at exhaustion, not loop or resample.
        from repro.faults.infra_faults import TierCapacityLossFault

        campaign = run_campaign(
            approach=BottleneckAnalysisApproach(),
            n_episodes=5,
            seed=44,
            faults=[TierCapacityLossFault("app")],
        )
        assert campaign.injected == 1
        assert len(campaign.reports) <= 1

    def test_undetected_fault_accounting(self):
        # A barely-perceptible surge never violates the SLO: it must be
        # cleared and counted as undetected, with no episode report.
        from repro.faults.infra_faults import LoadSurgeFault

        campaign = run_campaign(
            approach=BottleneckAnalysisApproach(),
            n_episodes=1,
            seed=45,
            faults=[LoadSurgeFault(factor=1.01, duration_ticks=30)],
            max_episode_wait=40,
        )
        assert campaign.undetected == 1
        assert campaign.injected == 1
        assert campaign.reports == []
        assert np.isnan(campaign.mean_detection_ticks())

    def test_detection_latency_statistic(self):
        from repro.faults.infra_faults import TierCapacityLossFault

        campaign = run_campaign(
            approach=BottleneckAnalysisApproach(),
            n_episodes=2,
            seed=46,
            faults=[
                TierCapacityLossFault("app"),
                TierCapacityLossFault("db"),
            ],
        )
        assert len(campaign.reports) == 2
        expected = np.mean(
            [r.detected_at - r.injected_at for r in campaign.reports]
        )
        assert campaign.mean_detection_ticks() == pytest.approx(expected)
        assert campaign.mean_detection_ticks() >= 0.0
