"""Small-scale runs of the table/figure harnesses.

The benchmarks run these at full scale with shape assertions; the tests
here verify the harness mechanics (structure, accounting, formatting)
at minimal scale so the unit suite stays fast.
"""

import numpy as np
import pytest

from repro.experiments.figure1 import (
    CATEGORY_ORDER,
    format_figure1,
    run_figure1,
)
from repro.experiments.table1 import _WRONG_FIX, format_table1, run_table1
from repro.faults.catalog import FAILURE_CATALOG


class TestFigure1Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1(episodes_per_service=6, seed=901)

    def test_all_three_services_measured(self, result):
        assert set(result.shares) == {"Online", "Content", "ReadMostly"}
        for service_name, shares in result.shares.items():
            assert set(shares) == set(CATEGORY_ORDER)
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_episode_counts_recorded(self, result):
        for service_name in result.shares:
            assert result.episode_counts[service_name] == 6

    def test_formatting_mentions_paper_claim(self, result):
        text = format_figure1(result)
        assert "operator" in text
        assert "Online" in text


class TestTable1Harness:
    def test_wrong_fix_map_covers_catalog(self):
        assert set(_WRONG_FIX) == {e.kind for e in FAILURE_CATALOG}
        # The probed wrong fix is never one of the row's candidates.
        for entry in FAILURE_CATALOG:
            assert _WRONG_FIX[entry.kind] not in entry.candidate_fixes

    def test_single_row_episode(self):
        from repro.experiments.table1 import _episode
        from repro.faults.catalog import catalog_entry

        entry = catalog_entry("network_fault")
        detected, recovered, detail = _episode(
            entry, "failover_network", seed=902, retries=1
        )
        assert detected and recovered
        assert "standby" in detail

        detected, recovered, _ = _episode(
            entry, "update_statistics", seed=903, retries=1
        )
        assert detected and not recovered

    def test_format_lists_all_rows(self):
        # A pre-built result avoids rerunning the full verification.
        from repro.experiments.table1 import Table1Result, Table1Row

        rows = [
            Table1Row(
                kind=e.kind,
                description=e.description,
                candidate_fixes=e.candidate_fixes,
                detected=True,
                fix_recovers=True,
                wrong_fix_recovers=False,
            )
            for e in FAILURE_CATALOG
        ]
        result = Table1Result(rows=rows)
        assert result.all_verified
        text = format_table1(result)
        for entry in FAILURE_CATALOG:
            assert entry.kind in text
