"""Tests for the debounced failure detector."""

import numpy as np
import pytest

from repro.monitoring.baseline import BaselineModel
from repro.monitoring.collectors import MetricCollector
from repro.monitoring.detector import FailureDetector
from repro.monitoring.timeseries import MetricStore


@pytest.fixture
def detector_setup(warm_service):
    collector = MetricCollector()
    store = MetricStore(collector.names)
    for _ in range(140):
        snapshot = warm_service.step()
        store.append(snapshot.tick, collector.collect(snapshot))
    baseline = BaselineModel(store, 120, 8)
    baseline.fit_baseline()
    return FailureDetector(baseline, violation_ticks=3, recovery_ticks=4)


class TestDebounce:
    def test_fires_after_streak(self, detector_setup):
        detector = detector_setup
        assert detector.observe(1, True) is None
        assert detector.observe(2, True) is None
        event = detector.observe(3, True)
        assert event is not None
        assert event.detected_at == 3
        assert detector.in_failure

    def test_blips_do_not_fire(self, detector_setup):
        detector = detector_setup
        pattern = [True, True, False, True, True, False]
        events = [detector.observe(i, v) for i, v in enumerate(pattern)]
        assert all(e is None for e in events)

    def test_no_double_fire_during_failure(self, detector_setup):
        detector = detector_setup
        for i in range(3):
            detector.observe(i, True)
        assert all(
            detector.observe(3 + i, True) is None for i in range(10)
        )
        assert detector.events_fired == 1

    def test_rearms_after_recovery(self, detector_setup):
        detector = detector_setup
        for i in range(3):
            detector.observe(i, True)
        for i in range(4):
            detector.observe(3 + i, False)
        assert not detector.in_failure
        for i in range(3):
            event = detector.observe(10 + i, True)
        assert event is not None
        assert event.event_id == 1

    def test_validation(self, detector_setup):
        with pytest.raises(ValueError):
            FailureDetector(detector_setup.baseline, violation_ticks=0)


class TestEventContents:
    def test_event_has_full_features_and_window(self, detector_setup):
        detector = detector_setup
        for i in range(3):
            event = detector.observe(i, True)
        n_metrics = len(event.metric_names)
        assert event.symptoms.shape == (2 * n_metrics,)
        assert len(event.feature_names) == 2 * n_metrics
        assert event.raw_window.shape[1] == n_metrics

    def test_metric_and_zscore_accessors(self, detector_setup):
        detector = detector_setup
        for i in range(3):
            event = detector.observe(i, True)
        latency = event.metric("service.latency_ms")
        assert latency > 0.0
        assert event.metric("service.latency_ms", np.max) >= latency
        z = event.zscore("service.latency_ms")
        assert np.isfinite(z)
