"""Tests for the metric ring-buffer store."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.monitoring.timeseries import MetricStore


@pytest.fixture
def store():
    return MetricStore(["a", "b"], capacity=8)


class TestAppendWindow:
    def test_window_returns_recent_rows_oldest_first(self, store):
        for i in range(5):
            store.append(i, np.array([float(i), float(-i)]))
        window = store.window(3)
        assert np.array_equal(window[:, 0], [2.0, 3.0, 4.0])

    def test_window_clamps_to_available(self, store):
        store.append(0, np.zeros(2))
        assert store.window(10).shape == (1, 2)

    def test_ring_overwrite(self, store):
        for i in range(20):
            store.append(i, np.array([float(i), 0.0]))
        assert len(store) == 8
        assert np.array_equal(
            store.window(8)[:, 0], np.arange(12.0, 20.0)
        )

    def test_latest(self, store):
        store.append(0, np.array([1.0, 2.0]))
        store.append(1, np.array([3.0, 4.0]))
        assert np.array_equal(store.latest(), [3.0, 4.0])

    def test_latest_empty_raises(self, store):
        with pytest.raises(RuntimeError):
            store.latest()

    def test_wrong_width_rejected(self, store):
        with pytest.raises(ValueError):
            store.append(0, np.zeros(3))


class TestWindowBetween:
    def test_offset_skips_recent(self, store):
        for i in range(6):
            store.append(i, np.array([float(i), 0.0]))
        window = store.window_between(2, 3)
        assert np.array_equal(window[:, 0], [1.0, 2.0, 3.0])

    def test_zero_offset_equals_window(self, store):
        for i in range(6):
            store.append(i, np.array([float(i), 0.0]))
        assert np.array_equal(store.window_between(0, 4), store.window(4))

    def test_offset_beyond_data_is_empty(self, store):
        store.append(0, np.zeros(2))
        assert store.window_between(5, 3).shape == (0, 2)


class TestSeries:
    def test_series_by_name(self, store):
        for i in range(4):
            store.append(i, np.array([float(i), float(10 * i)]))
        assert np.array_equal(store.series("b", 3), [10.0, 20.0, 30.0])

    def test_unknown_metric(self, store):
        with pytest.raises(KeyError):
            store.column_index("zzz")


@given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=40))
def test_window_is_suffix_of_appended(values):
    store = MetricStore(["x"], capacity=16)
    for i, value in enumerate(values):
        store.append(i, np.array([value]))
    n = min(len(values), 16)
    window = store.window(n)[:, 0]
    assert np.array_equal(window, np.asarray(values[-n:]))


def test_validation():
    with pytest.raises(ValueError):
        MetricStore([], capacity=8)
    with pytest.raises(ValueError):
        MetricStore(["a"], capacity=1)
    store = MetricStore(["a"])
    with pytest.raises(ValueError):
        store.window(0)
    with pytest.raises(ValueError):
        store.window_between(-1, 5)
