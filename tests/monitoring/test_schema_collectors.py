"""Tests for the metric registry and collectors."""

import numpy as np
import pytest

from repro.fixes.catalog import ALL_FIX_KINDS, NOTIFY_ADMIN
from repro.monitoring.collectors import MetricCollector
from repro.monitoring.schema import metric_registry


class TestRegistry:
    def test_names_unique(self):
        names = [spec.name for spec in metric_registry()]
        assert len(names) == len(set(names))

    def test_fix_hints_are_real_fix_kinds(self):
        valid = set(ALL_FIX_KINDS) | {NOTIFY_ADMIN}
        for spec in metric_registry():
            if spec.fix_hint is not None:
                assert spec.fix_hint in valid, spec.name

    def test_invasive_metrics_are_ejb_level(self):
        for spec in metric_registry():
            if spec.invasive:
                assert spec.component.startswith("ejb:")

    def test_every_tier_covered(self):
        tiers = {spec.tier for spec in metric_registry()}
        assert {"service", "web", "app", "db", "network"} <= tiers

    def test_config_telemetry_present(self):
        names = {spec.name for spec in metric_registry()}
        assert "service.recent_config_change" in names


class TestCollector:
    def test_row_matches_schema(self, warm_service):
        collector = MetricCollector()
        snapshot = warm_service.run(1)[0]
        row = collector.collect(snapshot)
        assert row.shape == (collector.n_metrics,)
        assert np.all(np.isfinite(row))

    def test_noninvasive_excludes_ejb_metrics(self, warm_service):
        collector = MetricCollector(include_invasive=False)
        assert not any(name.startswith("ejb.") for name in collector.names)
        invasive = MetricCollector(include_invasive=True)
        assert invasive.n_metrics > collector.n_metrics

    def test_known_values_land_in_right_columns(self, warm_service):
        collector = MetricCollector()
        snapshot = warm_service.run(1)[0]
        row = collector.collect(snapshot)
        names = collector.names
        assert row[names.index("service.latency_ms")] == pytest.approx(
            snapshot.latency_ms
        )
        assert row[names.index("app.heap_used_mb")] == pytest.approx(
            snapshot.heap_used_mb
        )
        assert row[names.index("db.buffer.data.hit")] == pytest.approx(
            snapshot.buffer_hit["data"]
        )

    def test_outcalls_come_from_call_matrix(self, warm_service):
        collector = MetricCollector()
        snapshot = warm_service.run(1)[0]
        row = collector.collect(snapshot)
        item_row = snapshot.caller_names.index("ItemBean")
        expected = snapshot.call_matrix[item_row].sum()
        actual = row[collector.names.index("ejb.ItemBean.outcalls")]
        assert actual == pytest.approx(expected)

    def test_log_est_act_ratio_is_logged(self, warm_service):
        collector = MetricCollector()
        snapshot = warm_service.run(1)[0]
        snapshot.est_act_ratio = 800.0
        row = collector.collect(snapshot)
        value = row[collector.names.index("db.log_est_act_ratio")]
        assert value == pytest.approx(np.log(800.0))
