"""Tests for baseline windows, symptom vectors, and call tracing."""

import numpy as np
import pytest

from repro.monitoring.baseline import BaselineModel
from repro.monitoring.collectors import MetricCollector
from repro.monitoring.timeseries import MetricStore
from repro.monitoring.tracing import CallMatrixTracer


def _filled_store(warm_service, ticks=140):
    collector = MetricCollector()
    store = MetricStore(collector.names)
    tracer = None
    for _ in range(ticks):
        snapshot = warm_service.step()
        store.append(snapshot.tick, collector.collect(snapshot))
        if tracer is None:
            tracer = CallMatrixTracer(
                snapshot.caller_names, snapshot.callee_names
            )
        tracer.observe(snapshot.call_matrix)
    return collector, store, tracer


class TestBaselineModel:
    def test_healthy_symptoms_are_small(self, warm_service):
        _, store, _ = _filled_store(warm_service)
        baseline = BaselineModel(store, 120, 8)
        baseline.fit_baseline()
        symptoms = baseline.symptom_vector()
        assert np.mean(np.abs(symptoms)) < 1.5

    def test_deviation_registers_in_zscores(self, warm_service):
        collector, store, _ = _filled_store(warm_service)
        baseline = BaselineModel(store, 120, 8)
        baseline.fit_baseline()
        warm_service.app.leak_mb_per_tick = 60.0
        for _ in range(12):
            snapshot = warm_service.step()
            store.append(snapshot.tick, collector.collect(snapshot))
        symptoms = baseline.symptom_vector()
        heap_z = symptoms[collector.names.index("app.heap_used_mb")]
        assert heap_z > 3.0

    def test_full_vector_is_z_then_raw(self, warm_service):
        collector, store, _ = _filled_store(warm_service)
        baseline = BaselineModel(store, 120, 8)
        baseline.fit_baseline()
        full = baseline.full_feature_vector()
        n = collector.n_metrics
        assert full.shape == (2 * n,)
        assert np.array_equal(full[:n], baseline.symptom_vector())
        assert np.array_equal(full[n:], baseline.current_means())
        names = baseline.full_feature_names()
        assert names[0].startswith("z.")
        assert names[n].startswith("raw.")

    def test_requires_enough_history(self):
        store = MetricStore(["a"], capacity=64)
        baseline = BaselineModel(store, 32, 4)
        for i in range(6):
            store.append(i, np.array([1.0]))
        with pytest.raises(RuntimeError):
            baseline.fit_baseline()

    def test_refresh_gated_on_health(self, warm_service):
        _, store, _ = _filled_store(warm_service)
        baseline = BaselineModel(store, 120, 8)
        baseline.refresh_if_healthy(violated=True)
        assert not baseline.ready
        baseline.refresh_if_healthy(violated=False)
        assert baseline.ready

    def test_window_validation(self):
        store = MetricStore(["a"])
        with pytest.raises(ValueError):
            BaselineModel(store, 8, 8)
        with pytest.raises(ValueError):
            BaselineModel(store, 8, 0)


class TestCallMatrixTracer:
    def test_baseline_split_normalized(self, warm_service):
        _, _, tracer = _filled_store(warm_service)
        split = tracer.baseline_split("__servlet__")
        assert split.sum() == pytest.approx(1.0)

    def test_wedged_bean_is_most_anomalous_caller(self, warm_service):
        _, _, tracer = _filled_store(warm_service)
        tracer.freeze_baseline()
        warm_service.app.container.set_deadlocked("ItemBean")
        for _ in range(10):
            snapshot = warm_service.step()
            tracer.observe(snapshot.call_matrix)
        suspect, score = tracer.most_anomalous_caller()
        assert suspect == "ItemBean"
        assert score > 5.0

    def test_throwing_bean_flagged_by_volume_or_split(self, warm_service):
        _, _, tracer = _filled_store(warm_service)
        tracer.freeze_baseline()
        warm_service.app.container.set_exception_rate("BidBean", 0.6)
        for _ in range(10):
            snapshot = warm_service.step()
            tracer.observe(snapshot.call_matrix)
        _, p_value, volume = tracer.caller_anomaly("BidBean")
        assert volume < -0.2 or p_value < 0.05

    def test_healthy_service_not_flagged(self, warm_service):
        _, _, tracer = _filled_store(warm_service)
        tracer.freeze_baseline()
        for _ in range(10):
            snapshot = warm_service.step()
            tracer.observe(snapshot.call_matrix)
        _, score = tracer.most_anomalous_caller()
        assert score < 20.0

    def test_shape_mismatch_rejected(self, warm_service):
        _, _, tracer = _filled_store(warm_service)
        with pytest.raises(ValueError):
            tracer.observe(np.zeros((2, 2)))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            CallMatrixTracer(["s"], ["a"], baseline_window=4, current_window=4)
