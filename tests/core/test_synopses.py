"""Tests for the synopsis framework (Section 5.2's learners)."""

import numpy as np
import pytest

from repro.core.synopses import (
    AdaBoostSynopsis,
    EnsembleSynopsis,
    KMeansSynopsis,
    NaiveBayesSynopsis,
    NearestNeighborSynopsis,
    build_synopsis,
)

FIXES = ("fix_a", "fix_b", "fix_c")


def _training_pairs(rng, n_per_class=12):
    """Three well-separated symptom modes, one per fix."""
    centers = {"fix_a": [8, 0, 0], "fix_b": [0, 8, 0], "fix_c": [0, 0, 8]}
    pairs = []
    for kind, center in centers.items():
        for _ in range(n_per_class):
            pairs.append(
                (np.asarray(center) + rng.normal(0, 0.5, 3), kind)
            )
    rng.shuffle(pairs)
    return pairs


@pytest.fixture(
    params=["nearest_neighbor", "kmeans", "adaboost", "naive_bayes"]
)
def synopsis(request):
    return build_synopsis(request.param, FIXES)


class TestCommonContract:
    def test_cold_start_uniform(self, synopsis):
        ranked = synopsis.ranked_fixes(np.zeros(3))
        assert len(ranked) == 3
        confidences = [c for _, c in ranked]
        assert all(c == pytest.approx(1 / 3) for c in confidences)

    def test_learns_separated_modes(self, synopsis, rng):
        for symptoms, kind in _training_pairs(rng):
            synopsis.add_success(symptoms, kind)
        assert synopsis.n_samples == 36
        query = np.asarray([8.0, 0.3, -0.3])
        assert synopsis.ranked_fixes(query)[0][0] == "fix_a"

    def test_ranked_covers_all_kinds(self, synopsis, rng):
        for symptoms, kind in _training_pairs(rng, n_per_class=4):
            synopsis.add_success(symptoms, kind)
        ranked = synopsis.ranked_fixes(np.zeros(3))
        assert {kind for kind, _ in ranked} == set(FIXES)

    def test_suggest_respects_exclusion(self, synopsis, rng):
        for symptoms, kind in _training_pairs(rng, n_per_class=4):
            synopsis.add_success(symptoms, kind)
        query = np.asarray([8.0, 0.0, 0.0])
        first, _ = synopsis.suggest(query)
        second, _ = synopsis.suggest(query, exclude={first})
        assert second != first
        assert synopsis.suggest(query, exclude=set(FIXES)) is None

    def test_training_time_accumulates(self, synopsis, rng):
        for symptoms, kind in _training_pairs(rng, n_per_class=2):
            synopsis.add_success(symptoms, kind)
        assert synopsis.training_time_s >= 0.0
        assert synopsis.fit_count == synopsis.n_samples

    def test_unknown_fix_rejected(self, synopsis):
        with pytest.raises(ValueError):
            synopsis.add_success(np.zeros(3), "fix_zzz")

    def test_batch_predict(self, synopsis, rng):
        for symptoms, kind in _training_pairs(rng, n_per_class=6):
            synopsis.add_success(symptoms, kind)
        queries = np.asarray([[8.0, 0, 0], [0, 8.0, 0]])
        predictions = synopsis.predict(queries)
        assert list(predictions) == ["fix_a", "fix_b"]


class TestNaiveBayesNegatives:
    def test_failed_fix_demoted_nearby(self, rng):
        synopsis = NaiveBayesSynopsis(FIXES)
        for symptoms, kind in _training_pairs(rng):
            synopsis.add_success(symptoms, kind)
        query = np.asarray([8.0, 0.0, 0.0])
        before = dict(synopsis.ranked_fixes(query))["fix_a"]
        synopsis.observe_failure(query, "fix_a")
        after = dict(synopsis.ranked_fixes(query))["fix_a"]
        assert after < before


class TestKMeansVariants:
    def test_multicentroid_requires_rng(self):
        with pytest.raises(ValueError):
            KMeansSynopsis(FIXES, centroids_per_fix=2)

    def test_multicentroid_handles_bimodal_class(self, rng):
        synopsis = KMeansSynopsis(
            FIXES, centroids_per_fix=2, rng=np.random.default_rng(1)
        )
        # fix_a has two modes at +/-10; fix_b sits at the origin.
        for _ in range(10):
            synopsis.add_success(
                np.asarray([10.0, 0, 0]) + rng.normal(0, 0.3, 3), "fix_a"
            )
            synopsis.add_success(
                np.asarray([-10.0, 0, 0]) + rng.normal(0, 0.3, 3), "fix_a"
            )
            synopsis.add_success(rng.normal(0, 0.3, 3), "fix_b")
        assert synopsis.ranked_fixes(np.asarray([0.1, 0, 0]))[0][0] == "fix_b"


class TestEnsemble:
    def _members(self):
        return [
            NearestNeighborSynopsis(FIXES),
            KMeansSynopsis(FIXES),
            NaiveBayesSynopsis(FIXES),
        ]

    def test_trains_members_through_wrapper(self, rng):
        ensemble = EnsembleSynopsis(FIXES, self._members())
        for symptoms, kind in _training_pairs(rng, n_per_class=6):
            ensemble.add_success(symptoms, kind)
        for member in ensemble.members:
            assert member.n_samples == 18
        assert ensemble.ranked_fixes(np.asarray([8.0, 0, 0]))[0][0] == "fix_a"

    def test_member_weights_track_accuracy(self, rng):
        ensemble = EnsembleSynopsis(FIXES, self._members())
        for symptoms, kind in _training_pairs(rng):
            ensemble.add_success(symptoms, kind)
        for member in ensemble.members:
            weight = ensemble.member_weight(member.name)
            assert 0.05 <= weight <= 1.0

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            EnsembleSynopsis(FIXES, [])

    def test_build_synopsis_unknown(self):
        with pytest.raises(KeyError):
            build_synopsis("oracle", FIXES)

    def test_training_time_accumulates_member_costs(self, rng):
        ensemble = EnsembleSynopsis(FIXES, self._members())
        for symptoms, kind in _training_pairs(rng, n_per_class=4):
            ensemble.add_success(symptoms, kind)
        # The base-class timer wraps the ensemble _fit (which fits all
        # members), so the counter must grow, not be reset to ~0.
        assert ensemble.training_time_s > 0.0
        assert ensemble.fit_count == ensemble.n_samples
