"""Tests for the five Table 2 approaches plus combined/adaptive."""

import numpy as np
import pytest

from repro.core.approaches.anomaly import AnomalyDetectionApproach
from repro.core.approaches.bottleneck import BottleneckAnalysisApproach
from repro.core.approaches.combined import AdaptiveApproach, CombinedApproach
from repro.core.approaches.correlation import CorrelationAnalysisApproach
from repro.core.approaches.manual import ManualRuleBased, Rule
from repro.core.approaches.signature import SignatureApproach
from repro.core.confidence import merge_recommendations
from repro.core.synopses import NaiveBayesSynopsis, NearestNeighborSynopsis
from repro.core.types import Recommendation
from repro.faults.app_faults import DeadlockedThreadsFault, SoftwareAgingFault
from repro.faults.db_faults import StaleStatisticsFault, TableContentionFault
from repro.faults.infra_faults import NetworkFault, TierCapacityLossFault
from repro.fixes.catalog import ALL_FIX_KINDS
from tests.helpers import capture_event


class TestManualRules:
    def test_catch_all_restart_always_fires(self):
        _, _, _, event = capture_event(DeadlockedThreadsFault("ItemBean"))
        recommendations = ManualRuleBased().recommend(event)
        kinds = [r.fix_kind for r in recommendations]
        assert "restart_service" in kinds

    def test_heap_rule_matches_aging(self):
        _, _, _, event = capture_event(SoftwareAgingFault(30.0))
        top = ManualRuleBased().recommend(event)[0]
        assert top.fix_kind == "reboot_tier"
        assert top.target == "app"

    def test_no_rule_for_stale_statistics(self):
        """The paper's incompleteness critique, verified."""
        _, _, _, event = capture_event(StaleStatisticsFault())
        top = ManualRuleBased().recommend(event)[0]
        assert top.fix_kind != "update_statistics"

    def test_exclusion_respected(self):
        _, _, _, event = capture_event(SoftwareAgingFault(30.0))
        recommendations = ManualRuleBased().recommend(
            event, exclude={"reboot_tier"}
        )
        assert all(r.fix_kind != "reboot_tier" for r in recommendations)

    def test_custom_rules(self):
        _, _, _, event = capture_event(NetworkFault())
        rules = [Rule("net", lambda e: True, "failover_network")]
        top = ManualRuleBased(rules).recommend(event)[0]
        assert top.fix_kind == "failover_network"


class TestAnomalyDetection:
    def test_localizes_wedged_bean(self):
        _, _, _, event = capture_event(DeadlockedThreadsFault("ItemBean"))
        recommendations = AnomalyDetectionApproach().recommend(event)
        microreboots = [
            r for r in recommendations if r.fix_kind == "microreboot_ejb"
        ]
        assert microreboots
        assert microreboots[0].target == "ItemBean"

    def test_works_without_invasive_data_but_loses_ejb_precision(self):
        _, _, _, event = capture_event(
            DeadlockedThreadsFault("ItemBean"), include_invasive=False
        )
        recommendations = AnomalyDetectionApproach().recommend(event)
        # Metric-level anomalies still produce suggestions...
        assert recommendations
        # ...but none can name the wedged bean.
        assert all(r.target != "ItemBean" for r in recommendations)

    def test_network_fault_flagged(self):
        _, _, _, event = capture_event(NetworkFault())
        kinds = [r.fix_kind for r in AnomalyDetectionApproach().recommend(event)]
        assert "failover_network" in kinds


class TestCorrelation:
    def test_needs_training_records(self):
        _, _, _, event = capture_event(TableContentionFault("items"))
        approach = CorrelationAnalysisApproach()
        assert approach.recommend(event) == []  # archive empty

    def test_finds_correlated_fix_with_archive(self):
        approach = CorrelationAnalysisApproach()
        service, injector, harness, event = capture_event(
            TableContentionFault("items")
        )
        # Feed history: healthy window plus the failure window.
        rows = harness.store.window(len(harness.store))
        n_healthy = len(rows) - 10
        for i, row in enumerate(rows):
            approach.observe_tick(row, violated=i >= n_healthy)
        kinds = [r.fix_kind for r in approach.recommend(event)]
        assert "repartition_table" in kinds

    def test_bayesnet_method(self):
        approach = CorrelationAnalysisApproach(method="bayesnet")
        service, injector, harness, event = capture_event(
            NetworkFault()
        )
        rows = harness.store.window(len(harness.store))
        n_healthy = len(rows) - 10
        for i, row in enumerate(rows):
            approach.observe_tick(row, violated=i >= n_healthy)
        recommendations = approach.recommend(event)
        assert recommendations  # produces ranked output

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            CorrelationAnalysisApproach(method="tarot")


class TestBottleneck:
    def test_diagnoses_capacity_loss(self):
        _, _, _, event = capture_event(TierCapacityLossFault("app"))
        top = BottleneckAnalysisApproach().recommend(event)[0]
        assert top.fix_kind == "provision_tier"
        assert top.target == "app"

    def test_diagnoses_stale_statistics(self):
        _, _, _, event = capture_event(StaleStatisticsFault())
        kinds = [
            r.fix_kind for r in BottleneckAnalysisApproach().recommend(event)
        ]
        assert kinds[0] == "update_statistics"

    def test_non_bottleneck_falls_through(self):
        from repro.faults.app_faults import SourceCodeBugFault

        _, _, _, event = capture_event(SourceCodeBugFault(0.25))
        recommendations = BottleneckAnalysisApproach().recommend(event)
        assert recommendations[0].confidence <= 0.2  # generic fallback


class TestCombinedAndAdaptive:
    def _signature(self):
        return SignatureApproach(NaiveBayesSynopsis(ALL_FIX_KINDS))

    def test_combined_consults_diagnosis_when_unsure(self):
        approach = CombinedApproach(
            self._signature(),
            diagnosers=[BottleneckAnalysisApproach()],
        )
        _, _, _, event = capture_event(TierCapacityLossFault("app"))
        top = approach.recommend(event)[0]
        assert top.fix_kind == "provision_tier"
        assert approach.diagnosis_consultations == 1

    def test_combined_learns_and_skips_diagnosis(self):
        approach = CombinedApproach(
            self._signature(),
            diagnosers=[BottleneckAnalysisApproach()],
            confidence_threshold=0.45,
        )
        _, _, _, event = capture_event(TierCapacityLossFault("app"))
        rec = Recommendation(
            "provision_tier", "app", 1.0, "test", "signature_fixsym"
        )
        # Teach the signature three times so the posterior is confident.
        for _ in range(3):
            approach.observe_outcome(event, rec, fixed=True)
        approach.recommend(event)
        assert approach.signature_decisions >= 1

    def test_adaptive_routes_outcomes(self, rng):
        members = [
            self._signature(),
            BottleneckAnalysisApproach(),
        ]
        adaptive = AdaptiveApproach(members, rng)
        _, _, _, event = capture_event(TierCapacityLossFault("app"))
        recommendations = adaptive.recommend(event)
        assert recommendations
        chosen = adaptive._chosen_for_event[event.event_id]
        adaptive.observe_outcome(event, recommendations[0], fixed=True)
        assert adaptive._successes[chosen] == 1

    def test_adaptive_requires_members(self, rng):
        with pytest.raises(ValueError):
            AdaptiveApproach([], rng)


class TestMergeRecommendations:
    def test_dedupes_and_bonuses_agreement(self):
        a = [Recommendation("fix_x", None, 0.6, "r1", "a1")]
        b = [
            Recommendation("fix_x", None, 0.5, "r2", "a2"),
            Recommendation("fix_y", None, 0.55, "r3", "a2"),
        ]
        merged = merge_recommendations([a, b])
        assert merged[0].fix_kind == "fix_x"
        assert merged[0].confidence == pytest.approx(0.65)

    def test_exclusion_and_weights(self):
        a = [Recommendation("fix_x", None, 0.9, "r", "a1")]
        b = [Recommendation("fix_y", None, 0.5, "r", "a2")]
        merged = merge_recommendations(
            [a, b], weights={"a2": 2.0}, exclude={"fix_x"}
        )
        assert [r.fix_kind for r in merged] == ["fix_y"]
        assert merged[0].confidence == pytest.approx(1.0)
