"""Tests for failure forecasting (5.3) and control analysis (5.4)."""

import numpy as np
import pytest

from repro.core.control import ProportionalProvisioner, step_response_metrics
from repro.core.forecasting import TrendForecaster


class TestTrendForecaster:
    def test_linear_ramp_crossing_predicted(self):
        forecaster = TrendForecaster(window=40)
        series = 100.0 + 5.0 * np.arange(60)
        forecast = forecaster.forecast("heap", series, threshold=500.0)
        assert forecast is not None
        current = forecast.current_value
        expected = (500.0 - current) / 5.0
        assert forecast.ticks_to_threshold == pytest.approx(expected, rel=0.05)
        assert forecast.imminent

    def test_flat_noise_produces_no_forecast(self, rng):
        forecaster = TrendForecaster(window=40, min_r2=0.6)
        series = 100.0 + rng.normal(0, 5.0, 80)
        assert forecaster.forecast("heap", series, 500.0) is None

    def test_wrong_direction_never_crosses(self):
        forecaster = TrendForecaster(window=40)
        series = 500.0 - 3.0 * np.arange(60)
        forecast = forecaster.forecast("heap", series, 600.0, rising=True)
        assert forecast is not None
        assert forecast.ticks_to_threshold == np.inf
        assert not forecast.imminent

    def test_falling_metric(self):
        forecaster = TrendForecaster(window=40)
        series = 0.99 - 0.01 * np.arange(60)
        forecast = forecaster.forecast("hit", series, 0.2, rising=False)
        assert forecast is not None
        assert forecast.imminent

    def test_already_crossed_is_zero(self):
        forecaster = TrendForecaster(window=20)
        series = 900.0 + 2.0 * np.arange(30)
        forecast = forecaster.forecast("heap", series, 800.0)
        assert forecast.ticks_to_threshold == 0.0

    def test_short_series_none(self):
        forecaster = TrendForecaster(window=40)
        assert forecaster.forecast("m", np.arange(10.0), 100.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TrendForecaster(window=4)
        with pytest.raises(ValueError):
            TrendForecaster(min_r2=1.0)


class TestStepResponse:
    def test_clean_settle(self):
        series = np.concatenate([np.linspace(2.0, 1.0, 10), np.full(30, 1.0)])
        response = step_response_metrics(series, target=1.0, band=0.1)
        assert response.settling_ticks <= 10
        assert response.overshoot == pytest.approx(0.0)
        assert response.steady_state_error == pytest.approx(0.0)

    def test_overshoot_measured(self):
        # Approaches 1.0 from 2.0 but dips to 0.6 before settling.
        series = np.concatenate(
            [np.linspace(2.0, 0.6, 10), np.linspace(0.6, 1.0, 10),
             np.full(20, 1.0)]
        )
        response = step_response_metrics(series, target=1.0, band=0.1)
        assert response.overshoot == pytest.approx(0.4, abs=0.05)

    def test_never_settles(self):
        series = 1.0 + np.sin(np.linspace(0, 20, 100))
        response = step_response_metrics(series, target=1.0, band=0.05)
        assert response.settling_ticks == np.inf
        assert response.oscillations > 3

    def test_validation(self):
        with pytest.raises(ValueError):
            step_response_metrics(np.array([]), target=1.0)
        with pytest.raises(ValueError):
            step_response_metrics(np.ones(3), target=0.0)


class TestProportionalProvisioner:
    def test_scales_up_when_hot(self):
        controller = ProportionalProvisioner(set_point=0.5, gain=1.0)
        assert controller.control(utilization=0.9, capacity=10) > 10

    def test_scales_down_when_cold(self):
        controller = ProportionalProvisioner(set_point=0.5, gain=1.0)
        assert controller.control(utilization=0.1, capacity=10) < 10

    def test_clipped_to_bounds(self):
        controller = ProportionalProvisioner(
            set_point=0.5, gain=10.0, min_capacity=2, max_capacity=16
        )
        assert controller.control(0.99, 16) == 16
        assert controller.control(0.0, 2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalProvisioner(set_point=0.0)
        with pytest.raises(ValueError):
            ProportionalProvisioner(gain=0.0)
