"""Unit tests for the shared backoff-with-deterministic-jitter helper."""

from __future__ import annotations

import pytest

from repro.core.retry import BackoffPolicy


class TestBackoffPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = BackoffPolicy(
            base_seconds=1.0, factor=2.0, max_seconds=60.0, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [
            1.0, 2.0, 4.0, 8.0,
        ]

    def test_cap_at_max_seconds(self):
        policy = BackoffPolicy(
            base_seconds=1.0, factor=2.0, max_seconds=5.0, jitter=0.0
        )
        assert policy.delay(10) == 5.0

    def test_jitter_is_deterministic_per_seed_and_keys(self):
        policy = BackoffPolicy(jitter=0.25)
        a = policy.delay(3, 7, "db")
        b = policy.delay(3, 7, "db")
        assert a == b
        assert policy.delay(3, 8, "db") != a
        assert policy.delay(3, 7, "web") != a

    def test_jitter_bounds(self):
        policy = BackoffPolicy(
            base_seconds=2.0, factor=1.0, max_seconds=60.0, jitter=0.5
        )
        for seed in range(40):
            delay = policy.delay(1, seed, "svc")
            assert 1.0 <= delay <= 3.0

    def test_schedule_matches_individual_delays(self):
        policy = BackoffPolicy()
        schedule = policy.schedule(4, 3, "db")
        assert schedule == [
            policy.delay(n, 3, "db") for n in (1, 2, 3, 4)
        ]

    def test_schedule_empty_for_zero_retries(self):
        assert BackoffPolicy().schedule(0, 0) == []

    def test_delays_never_negative(self):
        policy = BackoffPolicy(
            base_seconds=0.01, factor=1.0, max_seconds=1.0, jitter=0.9
        )
        assert all(
            policy.delay(1, seed, "x") >= 0.0 for seed in range(50)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_seconds": -1.0},
            {"factor": 0.5},
            {"max_seconds": 0.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay(0)
