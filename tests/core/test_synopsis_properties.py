"""Property-based tests on the synopsis contract.

Whatever data a synopsis has seen, its public behaviour must hold: the
ranking covers the fix universe with finite confidences, exclusion is
respected, predictions stay inside the universe, and training is
monotone in sample count.  These invariants are what the FixSym loop
relies on to terminate.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.synopses import build_synopsis

FIXES = ("alpha", "beta", "gamma", "delta")
_SYNOPSES = ["nearest_neighbor", "kmeans", "adaboost", "naive_bayes"]


@st.composite
def training_history(draw):
    """A random sequence of (symptoms, fix) pairs in a small space."""
    n = draw(st.integers(1, 12))
    pairs = []
    for _ in range(n):
        fix = draw(st.sampled_from(FIXES))
        symptoms = draw(
            st.lists(
                st.floats(-20, 20, allow_nan=False),
                min_size=4,
                max_size=4,
            )
        )
        pairs.append((np.asarray(symptoms), fix))
    return pairs


@given(name=st.sampled_from(_SYNOPSES), history=training_history())
@settings(max_examples=30, deadline=None)
def test_ranking_contract_after_any_history(name, history):
    synopsis = build_synopsis(name, FIXES)
    for symptoms, fix in history:
        synopsis.add_success(symptoms, fix)
    assert synopsis.n_samples == len(history)

    query = np.zeros(4)
    ranked = synopsis.ranked_fixes(query)
    kinds = [kind for kind, _ in ranked]
    assert set(kinds) == set(FIXES)
    assert len(kinds) == len(set(kinds))
    confidences = np.asarray([c for _, c in ranked])
    assert np.all(np.isfinite(confidences))
    assert np.all(confidences >= 0.0)
    # Best-first ordering.
    assert np.all(np.diff(confidences) <= 1e-9)


@given(name=st.sampled_from(_SYNOPSES), history=training_history())
@settings(max_examples=20, deadline=None)
def test_exclusion_always_terminates(name, history):
    """FixSym's retry loop relies on exclusion draining the universe."""
    synopsis = build_synopsis(name, FIXES)
    for symptoms, fix in history:
        synopsis.add_success(symptoms, fix)
    query = np.ones(4)
    excluded: set[str] = set()
    for _ in range(len(FIXES)):
        suggestion = synopsis.suggest(query, exclude=excluded)
        assert suggestion is not None
        kind, _ = suggestion
        assert kind not in excluded
        excluded.add(kind)
    assert synopsis.suggest(query, exclude=excluded) is None


@given(name=st.sampled_from(_SYNOPSES), history=training_history())
@settings(max_examples=20, deadline=None)
def test_predictions_stay_in_universe(name, history):
    synopsis = build_synopsis(name, FIXES)
    for symptoms, fix in history:
        synopsis.add_success(symptoms, fix)
    queries = np.asarray([[0.0, 0, 0, 0], [5.0, -5, 5, -5], [100.0] * 4])
    for prediction in synopsis.predict(queries):
        assert prediction in FIXES
