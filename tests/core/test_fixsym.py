"""Tests for the FixSym procedure (Figure 3 semantics)."""

import numpy as np
import pytest

from repro.core.fixsym import FixSym, FixSymConfig
from repro.core.synopses import NearestNeighborSynopsis
from repro.fixes.catalog import ALL_FIX_KINDS
from repro.monitoring.detector import FailureEvent


def _event(event_id=0, symptoms=None):
    symptoms = symptoms if symptoms is not None else np.zeros(6)
    return FailureEvent(
        event_id=event_id,
        detected_at=100,
        symptoms=np.asarray(symptoms, dtype=float),
        feature_names=[f"f{i}" for i in range(len(symptoms))],
        raw_window=np.zeros((3, len(symptoms))),
        metric_names=[f"f{i}" for i in range(len(symptoms))],
    )


@pytest.fixture
def fixsym():
    return FixSym(NearestNeighborSynopsis(ALL_FIX_KINDS))


class TestEpisodeProtocol:
    def test_cold_start_suggests_cheapest_first(self, fixsym):
        event = _event()
        fixsym.begin_episode(event)
        rec = fixsym.suggest_fix(event)
        # Cheapest fixes cost 1 tick: microreboot / kill query / repart mem.
        from repro.fixes.catalog import fix_class

        assert fix_class(rec.fix_kind).cost_ticks == 1

    def test_failed_fixes_are_not_resuggested(self, fixsym):
        event = _event()
        fixsym.begin_episode(event)
        tried = []
        for _ in range(5):
            rec = fixsym.suggest_fix(event)
            assert rec.fix_kind not in tried
            tried.append(rec.fix_kind)
            fixsym.record_outcome(event, rec.fix_kind, fixed=False)

    def test_threshold_exhausts_suggestions(self, fixsym):
        fixsym.config = FixSymConfig(threshold=2)
        event = _event()
        fixsym.begin_episode(event)
        for _ in range(2):
            rec = fixsym.suggest_fix(event)
            fixsym.record_outcome(event, rec.fix_kind, fixed=False)
        assert fixsym.exhausted
        assert fixsym.suggest_fix(event) is None

    def test_success_trains_the_synopsis(self, fixsym):
        event = _event(symptoms=[5.0, 0, 0, 0, 0, 0])
        fixsym.begin_episode(event)
        fixsym.record_outcome(event, "update_statistics", fixed=True)
        assert fixsym.synopsis.n_samples == 1
        # A recurrence of the same symptoms is recognized immediately.
        repeat = _event(event_id=1, symptoms=[5.1, 0, 0, 0, 0, 0])
        fixsym.begin_episode(repeat)
        assert fixsym.suggest_fix(repeat).fix_kind == "update_statistics"

    def test_new_episode_resets_tried_set(self, fixsym):
        event = _event()
        fixsym.begin_episode(event)
        rec = fixsym.suggest_fix(event)
        fixsym.record_outcome(event, rec.fix_kind, fixed=False)
        second = _event(event_id=1)
        fixsym.begin_episode(second)
        assert fixsym.attempts_this_episode == 0

    def test_admin_fix_recorded(self, fixsym):
        event = _event(symptoms=[0, 7.0, 0, 0, 0, 0])
        fixsym.begin_episode(event)
        fixsym.record_admin_fix(event, "rollback_config")
        assert fixsym.escalations == 1
        assert fixsym.synopsis.n_samples == 1

    def test_admin_fix_outside_universe_ignored(self, fixsym):
        event = _event()
        fixsym.begin_episode(event)
        fixsym.record_admin_fix(event, "notify_admin")
        assert fixsym.synopsis.n_samples == 0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FixSymConfig(threshold=0)
        with pytest.raises(ValueError):
            FixSymConfig(cold_start="psychic")

    def test_uniform_cold_start_uses_synopsis_ranking(self):
        fixsym = FixSym(
            NearestNeighborSynopsis(ALL_FIX_KINDS),
            FixSymConfig(cold_start="uniform"),
        )
        event = _event()
        fixsym.begin_episode(event)
        rec = fixsym.suggest_fix(event)
        assert rec.fix_kind in ALL_FIX_KINDS
        assert rec.confidence == pytest.approx(1 / len(ALL_FIX_KINDS))
